#include "runtime/thread_pool.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace safe::runtime {

namespace {

// Pool observability (DESIGN.md §11). Task and steal tallies, queue-depth
// high-water, and idle time are all scheduling-dependent except the total
// task count, which is a pure function of the submitted workload.
const telemetry::MetricId& pool_tasks_metric() {
  static const telemetry::MetricId id =
      telemetry::counter("pool.tasks", telemetry::Stability::kDeterministic);
  return id;
}

const telemetry::MetricId& pool_steals_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "pool.steals", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& pool_idle_ns_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "pool.idle_ns", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& pool_queue_depth_metric() {
  static const telemetry::MetricId id =
      telemetry::gauge_max("pool.queue_depth_max");
  return id;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  const std::size_t n = num_threads == 0 ? 1 : num_threads;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  try {
    shutdown();
  } catch (...) {
    // A destructor must not throw; std::thread::join can only fail here on
    // states (deadlock-with-self, invalid id) that indicate a caller bug.
  }
}

bool ThreadPool::push_to_some_queue(std::function<void()>& task) {
  // Round-robin over the queues starting at a rotating offset; first queue
  // with room wins. A full sweep with no room means global backpressure.
  const std::size_t n = queues_.size();
  const std::size_t start =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % n;
  for (std::size_t k = 0; k < n; ++k) {
    WorkerQueue& q = *queues_[(start + k) % n];
    MutexLock guard(q.mutex);
    if (q.tasks.size() >= capacity_) continue;
    q.tasks.push_back(std::move(task));
    telemetry::gauge_update_max(pool_queue_depth_metric(),
                                static_cast<double>(q.tasks.size()));
    return true;
  }
  return false;
}

bool ThreadPool::submit_once(std::function<void()>& task) {
  if (stop_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ThreadPool: submit after shutdown");
  }
  if (draining_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ThreadPool: submit after drain");
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (!push_to_some_queue(task)) {  // only moves from `task` on success
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Lock-then-notify pairs with the predicate re-check inside wait();
    // without it a worker could check the predicate, see no work, and sleep
    // through this notification.
    MutexLock guard(wake_mutex_);
  }
  worker_cv_.notify_one();
  return true;
}

bool ThreadPool::try_submit(std::function<void()> task) {
  return submit_once(task);
}

void ThreadPool::submit(std::function<void()> task) {
  while (!submit_once(task)) {
    MutexLock lock(wake_mutex_);
    idle_cv_.wait(wake_mutex_, [this] {
      return stop_.load(std::memory_order_acquire) ||
             draining_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) <
                 capacity_ * queues_.size();
    });
  }
}

bool ThreadPool::pop_or_steal(std::size_t index, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  {
    WorkerQueue& own = *queues_[index];
    MutexLock guard(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  for (std::size_t k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(index + k) % n];
    MutexLock guard(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_release);
      steals_.fetch_add(1, std::memory_order_relaxed);
      telemetry::add(pool_steals_metric());
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  telemetry::set_thread_name("pool-worker-" + std::to_string(index));
  std::function<void()> task;
  while (true) {
    if (pop_or_steal(index, task)) {
      {
        MutexLock guard(wake_mutex_);
      }
      idle_cv_.notify_all();  // queue space freed: unblock submitters
      try {
        telemetry::add(pool_tasks_metric());
        task();
      } catch (...) {
        MutexLock guard(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      task = nullptr;
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock guard(wake_mutex_);
        idle_cv_.notify_all();
      }
      continue;
    }
    // Time spent parked with an empty queue. The clock is only read when
    // metrics are on, so a disabled build never pays for it.
    const bool account_idle = telemetry::metrics_enabled();
    const std::uint64_t idle_start = account_idle ? telemetry::now_ns() : 0;
    {
      MutexLock lock(wake_mutex_);
      worker_cv_.wait(wake_mutex_, [this] {
        return stop_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_acquire) > 0;
      });
    }
    if (account_idle) {
      telemetry::add(pool_idle_ns_metric(),
                     telemetry::now_ns() - idle_start);
    }
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::wait_idle() {
  {
    MutexLock lock(wake_mutex_);
    idle_cv_.wait(wake_mutex_, [this] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }
  MutexLock guard(error_mutex_);
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

void ThreadPool::drain() {
  {
    // Lock-then-store pairs with the predicate re-check inside blocked
    // submit() waits, exactly like shutdown()'s stop flag.
    MutexLock guard(wake_mutex_);
    draining_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();  // blocked submitters re-check and throw
  MutexLock lock(wake_mutex_);
  idle_cv_.wait(wake_mutex_, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::shutdown() {
  {
    MutexLock guard(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  worker_cv_.notify_all();
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace safe::runtime
