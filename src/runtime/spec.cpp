#include "runtime/spec.hpp"

#include <cctype>
#include <stdexcept>
#include <vector>

#include "attack/spec.hpp"
#include "detect/spec.hpp"
#include "platoon/spec.hpp"

namespace safe::runtime {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Splits on any of `seps` outside double quotes; drops comments (# to end
/// of segment) and empty segments. Quotes survive into the tokens and are
/// stripped by unquote().
std::vector<std::string> split_outside_quotes(const std::string& text,
                                              const std::string& seps) {
  std::vector<std::string> out;
  std::string current;
  bool in_quotes = false;
  bool in_comment = false;
  for (const char c : text) {
    if (in_comment) {
      if (c == '\n') in_comment = false;
      if (c != '\n') continue;
    }
    if (c == '"') in_quotes = !in_quotes;
    if (!in_quotes && c == '#') {
      in_comment = true;
      continue;
    }
    if (!in_quotes && seps.find(c) != std::string::npos) {
      if (!trim(current).empty()) out.push_back(trim(current));
      current.clear();
      continue;
    }
    current += c;
  }
  if (!trim(current).empty()) out.push_back(trim(current));
  return out;
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

[[noreturn]] void fail(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("campaign spec: `" + entry + "`: " + why);
}

double parse_number(const std::string& entry, const std::string& token) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(token, &consumed);
    if (consumed != token.size()) fail(entry, "trailing junk after number");
    return v;
  } catch (const std::invalid_argument&) {
    fail(entry, "expected a number, got `" + token + "`");
  } catch (const std::out_of_range&) {
    fail(entry, "number out of range: `" + token + "`");
  }
}

std::uint64_t parse_count(const std::string& entry, const std::string& token) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t v = std::stoull(token, &consumed);
    if (consumed != token.size()) fail(entry, "trailing junk after integer");
    return v;
  } catch (const std::invalid_argument&) {
    fail(entry, "expected an integer, got `" + token + "`");
  } catch (const std::out_of_range&) {
    fail(entry, "integer out of range: `" + token + "`");
  }
}

bool parse_bool(const std::string& entry, const std::string& token) {
  if (token == "true" || token == "on" || token == "1") return true;
  if (token == "false" || token == "off" || token == "0") return false;
  fail(entry, "expected true/false/on/off, got `" + token + "`");
}

/// `uniform(a,b)` / `loguniform(a,b)`, or std::nullopt when the token is
/// not a distribution call at all.
std::optional<Distribution> try_parse_distribution(const std::string& entry,
                                                   const std::string& token) {
  const auto open = token.find('(');
  if (open == std::string::npos || token.back() != ')') return std::nullopt;
  const std::string name = trim(token.substr(0, open));
  if (name != "uniform" && name != "loguniform") {
    fail(entry, "unknown distribution `" + name +
                    "` (expected uniform or loguniform)");
  }
  const std::string args =
      token.substr(open + 1, token.size() - open - 2);
  const auto comma = args.find(',');
  if (comma == std::string::npos) {
    fail(entry, "distribution needs two arguments: " + name + "(lo, hi)");
  }
  const double lo = parse_number(entry, trim(args.substr(0, comma)));
  const double hi = parse_number(entry, trim(args.substr(comma + 1)));
  try {
    return name == "uniform" ? Distribution::uniform(lo, hi)
                             : Distribution::log_uniform(lo, hi);
  } catch (const std::invalid_argument& e) {
    fail(entry, e.what());
  }
}

core::LeaderScenario parse_leader(const std::string& entry,
                                  const std::string& token) {
  if (token == "decel") return core::LeaderScenario::kConstantDecel;
  if (token == "decel-accel") return core::LeaderScenario::kDecelThenAccel;
  fail(entry, "unknown leader `" + token + "` (decel or decel-accel)");
}

core::AttackKind parse_attack(const std::string& entry,
                              const std::string& token) {
  if (token == "none") return core::AttackKind::kNone;
  if (token == "dos") return core::AttackKind::kDosJammer;
  if (token == "delay") return core::AttackKind::kDelayInjection;
  fail(entry, "unknown attack `" + token + "` (none, dos, delay)");
}

}  // namespace

CampaignSpec parse_campaign_spec(const std::string& text) {
  CampaignSpec spec;
  bool hardened = false;
  std::size_t max_holdover = 15;

  for (const std::string& entry : split_outside_quotes(text, "\n;")) {
    const auto eq = entry.find('=');
    if (eq == std::string::npos) fail(entry, "expected key = value");
    const std::string key = trim(entry.substr(0, eq));
    const std::string value = trim(entry.substr(eq + 1));
    if (value.empty()) fail(entry, "empty value");
    const std::vector<std::string> tokens =
        split_outside_quotes(value, "|");
    const std::string first = unquote(tokens.front());

    if (key == "trials") {
      spec.trials = static_cast<std::size_t>(parse_count(entry, first));
    } else if (key == "seed") {
      spec.seed = parse_count(entry, first);
    } else if (key == "horizon") {
      spec.base.horizon_steps =
          static_cast<std::int64_t>(parse_count(entry, first));
    } else if (key == "leader") {
      for (const auto& t : tokens) {
        spec.leaders.push_back(parse_leader(entry, unquote(t)));
      }
    } else if (key == "attack") {
      // Bare legacy names keep the enum axis (and its exact cell mapping);
      // any parameterized token upgrades the whole list to the attack-spec
      // axis so one `attack =` entry stays one axis.
      bool all_legacy = true;
      for (const auto& t : tokens) {
        const std::string a = unquote(t);
        if (a != "none" && a != "dos" && a != "delay") {
          all_legacy = false;
          break;
        }
      }
      for (const auto& t : tokens) {
        const std::string a = unquote(t);
        if (all_legacy) {
          spec.attacks.push_back(parse_attack(entry, a));
          continue;
        }
        const std::string normalized = a == "none" ? std::string{} : a;
        // Same parse-time validation as `detector`: reject a bad attack
        // spec once here instead of erroring every trial on its cell.
        if (!normalized.empty()) {
          const attack::SpecCheck check =
              attack::check_attack_spec(normalized);
          if (check.status != attack::SpecStatus::kOk) {
            fail(entry, check.message);
          }
        }
        spec.attack_specs.push_back(normalized);
      }
    } else if (key == "onset") {
      if (auto dist = try_parse_distribution(entry, first)) {
        spec.attack_onset_s = *dist;
      } else if (tokens.size() > 1) {
        for (const auto& t : tokens) {
          spec.attack_onsets_s.push_back(
              units::Seconds{parse_number(entry, unquote(t))});
        }
      } else {
        spec.base.attack_start_s = units::Seconds{parse_number(entry, first)};
      }
    } else if (key == "end") {
      spec.base.attack_end_s = units::Seconds{parse_number(entry, first)};
    } else if (key == "duration") {
      if (auto dist = try_parse_distribution(entry, first)) {
        spec.attack_duration_s = *dist;
      } else {
        spec.attack_duration_s =
            Distribution::fixed(parse_number(entry, first));
      }
    } else if (key == "jammer_power_w" || key == "jammer_w") {
      if (auto dist = try_parse_distribution(entry, first)) {
        spec.jammer_power_w = *dist;
      } else if (tokens.size() > 1) {
        for (const auto& t : tokens) {
          spec.jammer_powers_w.push_back(parse_number(entry, unquote(t)));
        }
      } else {
        spec.base.jammer.peak_power_w = parse_number(entry, first);
      }
    } else if (key == "fault") {
      for (const auto& t : tokens) {
        const std::string f = unquote(t);
        spec.fault_specs.push_back(f == "none" ? std::string{} : f);
      }
    } else if (key == "detector") {
      for (const auto& t : tokens) {
        const std::string d = unquote(t);
        const std::string normalized = d == "none" ? std::string{} : d;
        // Fail at parse time (with the detect module's message) instead of
        // erroring every trial that lands on the bad cell.
        const detect::SpecCheck check =
            detect::check_detector_spec(normalized);
        if (check.status != detect::SpecStatus::kOk) {
          fail(entry, check.message);
        }
        spec.detector_specs.push_back(normalized);
      }
    } else if (key == "platoon") {
      for (const auto& t : tokens) {
        const std::string p = unquote(t);
        const std::string normalized = p == "none" ? std::string{} : p;
        // Same parse-time validation as `detector`: reject a bad platoon
        // spec once here instead of erroring every trial on its cell.
        if (!normalized.empty()) {
          const platoon::SpecCheck check =
              platoon::check_platoon_spec(normalized);
          if (!check.ok) fail(entry, check.message);
        }
        spec.platoon_specs.push_back(normalized);
      }
    } else if (key == "defense") {
      if (tokens.size() > 1) {
        for (const auto& t : tokens) {
          spec.defenses.push_back(parse_bool(entry, unquote(t)));
        }
      } else {
        spec.base.defense_enabled = parse_bool(entry, first);
      }
    } else if (key == "estimator") {
      if (first == "music") {
        spec.base.estimator = radar::BeatEstimator::kRootMusic;
      } else if (first == "fft") {
        spec.base.estimator = radar::BeatEstimator::kPeriodogram;
      } else {
        fail(entry, "unknown estimator `" + first + "` (music or fft)");
      }
    } else if (key == "hardened") {
      hardened = parse_bool(entry, first);
    } else if (key == "max_holdover") {
      max_holdover = static_cast<std::size_t>(parse_count(entry, first));
      hardened = true;
    } else {
      fail(entry, "unknown key `" + key + "` (run `--spec help`)");
    }
  }

  if (hardened) {
    spec.base.pipeline = core::hardened_pipeline_options(max_holdover);
  }
  return spec;
}

std::string campaign_spec_help() {
  return
      "campaign spec language: `key = value` entries separated by newlines\n"
      "or `;`. `#` comments. `|`-separated values form a grid axis (crossed\n"
      "with the other grids, trial t -> cell t mod n_cells); uniform(a,b)\n"
      "and loguniform(a,b) declare randomized axes sampled per trial from\n"
      "the campaign seed. Double-quote a value to protect `;`/`|`/`#`.\n"
      "\n"
      "  trials = N            number of trials (campaign_cli --trials wins)\n"
      "  seed = N              master seed; every trial seed derives from it\n"
      "  horizon = K           simulation steps per trial (default 300)\n"
      "  leader = decel | decel-accel               grid\n"
      "  attack = none | dos | delay                grid (legacy enum), or\n"
      "  attack = \"spoof:coherence=0.9\" | \"entrain:replay=0\" | dos   grid\n"
      "                        (attack mini-language; any parameterized token\n"
      "                        upgrades the whole list to the spec axis)\n"
      "  onset = 182 | 60|100|140 | uniform(60,240) fixed / grid / random\n"
      "  end = 300             fixed attack end time [s]\n"
      "  duration = 90 | uniform(30,120)   attack end = onset + duration\n"
      "  jammer_power_w = 0.1 | 0.01|0.1|1 | loguniform(0.01,1)\n"
      "  fault = none | \"dropout:start=60,len=12\"   grid (fault mini-language)\n"
      "  detector = cra | \"chi2:threshold=9.21\" | ar   grid (detector spec\n"
      "                        mini-language; none/cra = paper CRA backend)\n"
      "  platoon = none | \"n=8,attacked=3\" | \"n=4,detector=chi2\"   grid\n"
      "                        (platoon mini-language; none = the pair scene)\n"
      "  defense = on | off | on|off   fixed or grid; raw data when off\n"
      "  estimator = music | fft   beat estimator (fft ~20x faster)\n"
      "  hardened = true       use core::hardened_pipeline_options()\n"
      "  max_holdover = K      holdover budget; implies hardened = true\n";
}

}  // namespace safe::runtime
