// Text form of a CampaignSpec (the `--spec` language of campaign_cli).
//
// One `key = value` entry per line; `#` starts a comment. Entries may also
// be separated by `;` so a whole spec fits in one shell argument; a value
// containing `;` or `|` (e.g. a multi-injector fault spec) can be protected
// with double quotes. `|`-separated values form a grid axis; `uniform(a,b)`
// and `loguniform(a,b)` declare a randomized axis.
//
//   trials = 1000
//   seed = 42
//   attack = none | dos | delay        # grid axis, crossed with others
//   onset = uniform(60, 240)           # randomized axis
//   duration = uniform(30, 120)        # attack end = onset + duration
//   jammer_power_w = loguniform(0.01, 1.0)
//   fault = none | "dropout:start=60,len=12;nan:start=100,period=40"
//   hardened = true
//
// See campaign_spec_help() for the full key list.
#pragma once

#include <string>

#include "runtime/campaign.hpp"

namespace safe::runtime {

/// Parses the spec language into a CampaignSpec. Throws
/// std::invalid_argument with a line-qualified message on malformed input.
[[nodiscard]] CampaignSpec parse_campaign_spec(const std::string& text);

/// Human-readable description of every key (printed by `--spec help`).
[[nodiscard]] std::string campaign_spec_help();

}  // namespace safe::runtime
