// Annotated synchronization primitives (DESIGN.md §14).
//
// Thin wrappers over std::mutex / std::condition_variable carrying clang
// thread-safety capability attributes, so the lock discipline that TSan can
// only check on the interleavings a test happens to hit becomes a
// compile-time contract: every shared field names its guarding mutex with
// SAFE_GUARDED_BY, every helper that expects a lock held says so with
// SAFE_REQUIRES, and a violation is a build break under
// `-Werror=thread-safety` (on for every clang build; the attributes expand
// to nothing elsewhere, so gcc builds are byte-identical).
//
// Conventions:
//   * Mutex is the only lockable type in annotated code. Lock it with
//     MutexLock (RAII); bare lock()/unlock() are public only for the
//     unlock-then-relock pattern inside an already-scoped region.
//   * CondVar::wait takes the Mutex itself (not a lock object) and is
//     annotated SAFE_REQUIRES(mu), which is what lets the analysis follow a
//     wait loop without special cases.
//   * A deliberate hole in the analysis gets SAFE_NO_THREAD_SAFETY_ANALYSIS
//     plus a comment saying why; an invariant the analysis cannot see gets
//     SAFE_ASSERT_CAPABILITY. Both are greppable.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

// --- attribute macros ------------------------------------------------------
// Guarded behind __has_attribute so the same headers compile warning-free on
// gcc and on clang versions without the analysis.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SAFE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SAFE_THREAD_ANNOTATION
#define SAFE_THREAD_ANNOTATION(x)
#endif

#define SAFE_CAPABILITY(x) SAFE_THREAD_ANNOTATION(capability(x))
#define SAFE_SCOPED_CAPABILITY SAFE_THREAD_ANNOTATION(scoped_lockable)
#define SAFE_GUARDED_BY(x) SAFE_THREAD_ANNOTATION(guarded_by(x))
#define SAFE_PT_GUARDED_BY(x) SAFE_THREAD_ANNOTATION(pt_guarded_by(x))
#define SAFE_ACQUIRE(...) \
  SAFE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SAFE_RELEASE(...) \
  SAFE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SAFE_TRY_ACQUIRE(...) \
  SAFE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SAFE_REQUIRES(...) \
  SAFE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SAFE_EXCLUDES(...) SAFE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SAFE_ASSERT_CAPABILITY(x) \
  SAFE_THREAD_ANNOTATION(assert_capability(x))
#define SAFE_RETURN_CAPABILITY(x) SAFE_THREAD_ANNOTATION(lock_returned(x))
#define SAFE_NO_THREAD_SAFETY_ANALYSIS \
  SAFE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace safe::runtime {

class CondVar;

/// std::mutex with the `capability` attribute, so fields can be declared
/// SAFE_GUARDED_BY(mutex_) and functions SAFE_REQUIRES(mutex_).
class SAFE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SAFE_ACQUIRE() { mu_.lock(); }
  void unlock() SAFE_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SAFE_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock (the annotated replacement for std::lock_guard /
/// std::unique_lock). Supports unlock-then-relock for callers that must
/// drop the lock mid-scope; the destructor releases only if held.
class SAFE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SAFE_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() SAFE_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock (e.g. to call out to sinks); pair with
  /// lock() before the scope ends.
  void unlock() SAFE_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() SAFE_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to the annotated Mutex. wait() requires the
/// mutex held — exactly the std::condition_variable contract, but stated in
/// a way the thread-safety analysis can check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu`, waits, and re-acquires before returning.
  void wait(Mutex& mu) SAFE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Waits until `pred()` holds. `pred` runs with `mu` held; the analysis
  /// cannot see that through std::condition_variable, so predicates reading
  /// guarded fields belong in functions annotated SAFE_REQUIRES(mu).
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) SAFE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace safe::runtime
