#include "runtime/sink.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace safe::runtime {

namespace {

/// Shortest round-trip decimal form of `v` (std::to_chars), so that equal
/// doubles always serialize to equal bytes.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN literals; null keeps the line parseable.
    out += "null";
    return;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Nearest-rank quantile of an ascending-sorted vector.
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(pos));
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Splits (trial id, value) samples into trial-ordered values: the one
/// canonical reduction order shared by every shard layout.
std::vector<double> values_in_trial_order(
    std::vector<std::pair<std::uint64_t, double>> samples) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& [id, v] : samples) values.push_back(v);
  return values;
}

}  // namespace

const char* leader_name(core::LeaderScenario leader) {
  switch (leader) {
    case core::LeaderScenario::kConstantDecel: return "decel";
    case core::LeaderScenario::kDecelThenAccel: return "decel-accel";
  }
  return "unknown";
}

const char* attack_name(core::AttackKind attack) {
  switch (attack) {
    case core::AttackKind::kNone: return "none";
    case core::AttackKind::kDosJammer: return "dos";
    case core::AttackKind::kDelayInjection: return "delay";
  }
  return "unknown";
}

std::string to_jsonl(const TrialRecord& r) {
  std::string out;
  out.reserve(384);
  out += "{\"trial\":";
  out += std::to_string(r.trial_id);
  out += ",\"seed\":";
  out += std::to_string(r.scenario_seed);
  out += ",\"leader\":\"";
  out += leader_name(r.leader);
  out += "\",\"attack\":\"";
  out += attack_name(r.attack);
  out += "\",\"attack_spec\":";
  append_escaped(out, r.attack_spec);
  out += ",\"onset_s\":";
  append_double(out, r.attack_start_s.value());
  out += ",\"end_s\":";
  append_double(out, r.attack_end_s.value());
  out += ",\"jammer_w\":";
  append_double(out, r.jammer_power_w);
  out += ",\"fault\":";
  append_escaped(out, r.fault_spec);
  out += ",\"detector\":";
  append_escaped(out, r.detector_spec);
  out += ",\"defense\":";
  out += r.defense_enabled ? "true" : "false";
  out += ",\"max_holdover\":";
  out += std::to_string(r.max_holdover_steps);
  out += ",\"horizon\":";
  out += std::to_string(r.horizon_steps);
  out += ",\"collided\":";
  out += r.collided ? "true" : "false";
  out += ",\"collision_step\":";
  out += std::to_string(r.collision_step);
  out += ",\"detection_step\":";
  out += std::to_string(r.detection_step);
  out += ",\"latency_s\":";
  append_double(out, r.detection_latency_s.value());
  out += ",\"min_gap_m\":";
  append_double(out, r.min_gap_m.value());
  out += ",\"fp\":";
  out += std::to_string(r.false_positives);
  out += ",\"fn\":";
  out += std::to_string(r.false_negatives);
  out += ",\"tp\":";
  out += std::to_string(r.true_positives);
  out += ",\"tn\":";
  out += std::to_string(r.true_negatives);
  out += ",\"holdover_rmse_m\":";
  append_double(out, r.holdover_rmse_m.value());
  out += ",\"holdover_steps\":";
  out += std::to_string(r.holdover_steps);
  out += ",\"safe_stop_steps\":";
  out += std::to_string(r.safe_stop_steps);
  out += ",\"nonfinite\":";
  out += std::to_string(r.nonfinite_controller_inputs);
  out += ",\"rejected_nonfinite\":";
  out += std::to_string(r.rejected_nonfinite);
  out += ",\"rejected_signal\":";
  out += std::to_string(r.rejected_signal);
  out += ",\"bridged\":";
  out += std::to_string(r.bridged_dropouts);
  out += ",\"resets\":";
  out += std::to_string(r.predictor_resets);
  out += ",\"degradation_max\":";
  append_double(out, r.degradation_max);
  out += ",\"platoon\":";
  append_escaped(out, r.platoon_spec);
  out += ",\"platoon_size\":";
  out += std::to_string(r.platoon_size);
  out += ",\"attacked_index\":";
  out += std::to_string(r.attacked_index);
  out += ",\"shock_depth\":";
  out += std::to_string(r.shock_depth);
  out += ",\"linf_amp\":";
  append_double(out, r.linf_amplification);
  out += ",\"safe_stop_vehicles\":";
  out += std::to_string(r.safe_stop_vehicles);
  out += ",\"detected_vehicles\":";
  out += std::to_string(r.detected_vehicles);
  out += ",\"error\":";
  append_escaped(out, r.error);
  out += "}";
  return out;
}

void JsonlWriter::consume(const TrialRecord& record) {
  out_ << to_jsonl(record) << '\n';
}

void JsonlWriter::finish() { out_.flush(); }

void SummaryAccumulator::add(const TrialRecord& r) {
  ++trials_;
  if (!r.error.empty()) {
    ++errors_;
    return;  // a throwing trial has no trustworthy outcome fields
  }
  if (r.collided) ++collisions_;
  min_gap_samples_.emplace_back(r.trial_id, r.min_gap_m.value());
  false_positives_ += r.false_positives;
  false_negatives_ += r.false_negatives;
  if (r.safe_stop_steps > 0) ++safe_stop_trials_;
  if (r.holdover_steps > 0) {
    holdover_rmse_samples_.emplace_back(r.trial_id, r.holdover_rmse_m.value());
  }
  if (r.platoon_size >= 2) {
    ++platoon_trials_;
    safe_stop_vehicles_ += r.safe_stop_vehicles;
    detected_vehicles_ += r.detected_vehicles;
    shock_depth_samples_.emplace_back(r.trial_id,
                                      static_cast<double>(r.shock_depth));
    linf_amplification_samples_.emplace_back(r.trial_id,
                                             r.linf_amplification);
  }
  const bool spec_attacked = !r.attack_spec.empty() && r.attack_spec != "none";
  if (spec_attacked) {
    ++spec_attacked_;
    if (r.detection_step >= 0) ++spec_detected_;
  }
  if (r.attack != core::AttackKind::kNone || spec_attacked) {
    ++attacked_;
    if (r.detection_step >= 0) {
      ++detected_;
      latency_samples_.emplace_back(r.trial_id,
                                    r.detection_latency_s.value());
    } else {
      ++missed_;
    }
  }
}

void SummaryAccumulator::merge(const SummaryAccumulator& o) {
  trials_ += o.trials_;
  errors_ += o.errors_;
  collisions_ += o.collisions_;
  attacked_ += o.attacked_;
  detected_ += o.detected_;
  missed_ += o.missed_;
  false_positives_ += o.false_positives_;
  false_negatives_ += o.false_negatives_;
  safe_stop_trials_ += o.safe_stop_trials_;
  platoon_trials_ += o.platoon_trials_;
  safe_stop_vehicles_ += o.safe_stop_vehicles_;
  detected_vehicles_ += o.detected_vehicles_;
  spec_attacked_ += o.spec_attacked_;
  spec_detected_ += o.spec_detected_;
  latency_samples_.insert(latency_samples_.end(), o.latency_samples_.begin(),
                          o.latency_samples_.end());
  min_gap_samples_.insert(min_gap_samples_.end(), o.min_gap_samples_.begin(),
                          o.min_gap_samples_.end());
  holdover_rmse_samples_.insert(holdover_rmse_samples_.end(),
                                o.holdover_rmse_samples_.begin(),
                                o.holdover_rmse_samples_.end());
  shock_depth_samples_.insert(shock_depth_samples_.end(),
                              o.shock_depth_samples_.begin(),
                              o.shock_depth_samples_.end());
  linf_amplification_samples_.insert(linf_amplification_samples_.end(),
                                     o.linf_amplification_samples_.begin(),
                                     o.linf_amplification_samples_.end());
}

CampaignSummary SummaryAccumulator::finalize() const {
  CampaignSummary s;
  s.trials = trials_;
  s.errors = errors_;
  s.collisions = collisions_;
  const std::size_t completed = trials_ - errors_;
  s.collision_rate = completed > 0 ? static_cast<double>(collisions_) /
                                         static_cast<double>(completed)
                                   : 0.0;
  s.attacked_trials = attacked_;
  s.detected = detected_;
  s.missed = missed_;
  s.false_positives = false_positives_;
  s.false_negatives = false_negatives_;
  s.safe_stop_trials = safe_stop_trials_;

  std::vector<double> latency = values_in_trial_order(latency_samples_);
  if (!latency.empty()) {
    double sum = 0.0;
    for (const double v : latency) sum += v;  // trial order: deterministic
    s.latency_mean_s =
        units::Seconds{sum / static_cast<double>(latency.size())};
    std::sort(latency.begin(), latency.end());
    s.latency_p50_s = units::Seconds{quantile(latency, 0.50)};
    s.latency_p90_s = units::Seconds{quantile(latency, 0.90)};
    s.latency_max_s = units::Seconds{latency.back()};
  }

  std::vector<double> gaps = values_in_trial_order(min_gap_samples_);
  if (!gaps.empty()) {
    double sum = 0.0;
    for (const double v : gaps) sum += v;
    s.min_gap_mean_m = units::Meters{sum / static_cast<double>(gaps.size())};
    std::sort(gaps.begin(), gaps.end());
    s.min_gap_min_m = units::Meters{gaps.front()};
    s.min_gap_p5_m = units::Meters{quantile(gaps, 0.05)};
    s.min_gap_p50_m = units::Meters{quantile(gaps, 0.50)};
  }

  s.platoon_trials = platoon_trials_;
  s.safe_stop_vehicles_total = safe_stop_vehicles_;
  s.detected_vehicles_total = detected_vehicles_;
  s.spec_attack_trials = spec_attacked_;
  s.spec_attack_detected = spec_detected_;
  const std::vector<double> depth =
      values_in_trial_order(shock_depth_samples_);
  if (!depth.empty()) {
    double sum = 0.0;
    double peak = depth.front();
    for (const double v : depth) {
      sum += v;
      peak = std::max(peak, v);
    }
    s.shock_depth_mean = sum / static_cast<double>(depth.size());
    s.shock_depth_max = static_cast<std::size_t>(peak);
  }
  const std::vector<double> amp =
      values_in_trial_order(linf_amplification_samples_);
  if (!amp.empty()) {
    double sum = 0.0;
    double peak = amp.front();
    for (const double v : amp) {
      sum += v;
      peak = std::max(peak, v);
    }
    s.linf_amplification_mean = sum / static_cast<double>(amp.size());
    s.linf_amplification_max = peak;
  }

  std::vector<double> rmse = values_in_trial_order(holdover_rmse_samples_);
  s.holdover_trials = rmse.size();
  if (!rmse.empty()) {
    double sum = 0.0;
    double peak = rmse.front();
    for (const double v : rmse) {
      sum += v;
      peak = std::max(peak, v);
    }
    s.holdover_rmse_mean_m =
        units::Meters{sum / static_cast<double>(rmse.size())};
    s.holdover_rmse_max_m = units::Meters{peak};
  }
  return s;
}

std::string format_summary(const CampaignSummary& s) {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line),
                "trials            : %zu (%zu errored)\n", s.trials,
                s.errors);
  os << line;
  std::snprintf(line, sizeof(line),
                "collisions        : %zu (rate %.4f)\n", s.collisions,
                s.collision_rate);
  os << line;
  std::snprintf(line, sizeof(line),
                "attacked trials   : %zu (detected %zu, missed %zu)\n",
                s.attacked_trials, s.detected, s.missed);
  os << line;
  std::snprintf(line, sizeof(line),
                "CRA errors        : FP %zu, FN %zu\n", s.false_positives,
                s.false_negatives);
  os << line;
  std::snprintf(line, sizeof(line),
                "detection latency : mean %.2f s, p50 %.2f s, p90 %.2f s, "
                "max %.2f s\n",
                s.latency_mean_s.value(), s.latency_p50_s.value(),
                s.latency_p90_s.value(), s.latency_max_s.value());
  os << line;
  std::snprintf(line, sizeof(line),
                "min gap           : min %.2f m, p5 %.2f m, p50 %.2f m, "
                "mean %.2f m\n",
                s.min_gap_min_m.value(), s.min_gap_p5_m.value(),
                s.min_gap_p50_m.value(), s.min_gap_mean_m.value());
  os << line;
  std::snprintf(line, sizeof(line),
                "RLS holdover RMSE : mean %.3f m, max %.3f m over %zu "
                "trial(s) with holdover\n",
                s.holdover_rmse_mean_m.value(), s.holdover_rmse_max_m.value(),
                s.holdover_trials);
  os << line;
  std::snprintf(line, sizeof(line), "safe-stop trials  : %zu\n",
                s.safe_stop_trials);
  os << line;
  // Conditional so campaigns without a platoon axis keep their exact
  // pre-platoon summary bytes.
  if (s.platoon_trials > 0) {
    std::snprintf(line, sizeof(line), "platoon trials    : %zu\n",
                  s.platoon_trials);
    os << line;
    std::snprintf(line, sizeof(line),
                  "shock depth       : mean %.2f, max %zu vehicle(s)\n",
                  s.shock_depth_mean, s.shock_depth_max);
    os << line;
    std::snprintf(line, sizeof(line),
                  "string L-inf amp  : mean %.3f, max %.3f\n",
                  s.linf_amplification_mean, s.linf_amplification_max);
    os << line;
    std::snprintf(line, sizeof(line),
                  "cascade totals    : safe-stop vehicles %zu, detecting "
                  "vehicles %zu\n",
                  s.safe_stop_vehicles_total, s.detected_vehicles_total);
    os << line;
  }
  // Conditional for the same reason: enum-only campaigns keep their bytes.
  if (s.spec_attack_trials > 0) {
    std::snprintf(line, sizeof(line),
                  "spoofing trials   : %zu via --attack specs (detected "
                  "%zu, P(detect) %.4f)\n",
                  s.spec_attack_trials, s.spec_attack_detected,
                  static_cast<double>(s.spec_attack_detected) /
                      static_cast<double>(s.spec_attack_trials));
    os << line;
  }
  return os.str();
}

}  // namespace safe::runtime
