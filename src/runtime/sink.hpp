// Streaming result sinks for Monte Carlo campaigns.
//
// The campaign engine delivers one TrialRecord per trial to every attached
// sink, on the caller's thread, in trial-id order — regardless of which
// worker finished which trial when. Sinks therefore need no locking and
// their output is bit-identical across job counts.
//
// SummaryAccumulator is the mergeable half: worker shards accumulate
// concurrently (each shard under its own lock) and the engine merges them
// when the campaign drains. All order-sensitive floating-point reductions
// happen in finalize(), after a canonical sort by trial id, so the summary
// too is independent of scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "units/units.hpp"

namespace safe::runtime {

/// Everything recorded about one campaign trial: the expanded parameters
/// (so a JSONL line is self-describing) and the scalar outcomes.
struct TrialRecord {
  // --- identity & expanded parameters -------------------------------------
  std::uint64_t trial_id = 0;
  std::uint64_t scenario_seed = 0;
  core::LeaderScenario leader = core::LeaderScenario::kConstantDecel;
  core::AttackKind attack = core::AttackKind::kNone;
  /// `--attack` mini-language spec (attack/spec.hpp); empty = the legacy
  /// enum axis above. When set it names the attack that actually ran.
  std::string attack_spec;
  units::Seconds attack_start_s{0.0};
  units::Seconds attack_end_s{0.0};
  double jammer_power_w = 0.0;
  std::string fault_spec;
  std::string detector_spec;  ///< empty = paper CRA backend
  bool defense_enabled = true;
  std::size_t max_holdover_steps = 0;  ///< 0 = unbounded (paper profile).
  std::int64_t horizon_steps = 0;
  /// Platoon mini-language spec; empty = single leader-follower pair.
  std::string platoon_spec;
  std::size_t platoon_size = 0;    ///< Vehicles incl. leader; 0 = pair trial.
  std::size_t attacked_index = 0;  ///< Targeted follower; 0 = pair trial.

  // --- outcomes ------------------------------------------------------------
  bool collided = false;
  std::int64_t collision_step = -1;  ///< -1 = no collision.
  std::int64_t detection_step = -1;  ///< -1 = never detected.
  /// Detection latency (detection step minus attack onset, clamped at 0);
  /// negative when not applicable (no attack or never detected).
  units::Seconds detection_latency_s{-1.0};
  units::Meters min_gap_m{0.0};
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  // True-decision tallies from the same scored stream (ROC numerators /
  // denominators: TPR = tp / (tp + fn), FPR = fp / (fp + tn)).
  std::size_t true_positives = 0;
  std::size_t true_negatives = 0;
  /// RMSE of the pipeline's holdover estimate against the true gap over the
  /// steps where the controller ran on estimates (0 when none).
  units::Meters holdover_rmse_m{0.0};
  std::size_t holdover_steps = 0;
  std::size_t safe_stop_steps = 0;
  std::size_t nonfinite_controller_inputs = 0;
  // Health-monitor tallies (hardened pipeline; all zero otherwise).
  std::size_t rejected_nonfinite = 0;  ///< NaN/Inf measurements blocked.
  /// Out-of-range + innovation-gate + stuck-stream rejections combined.
  std::size_t rejected_signal = 0;
  std::size_t bridged_dropouts = 0;
  std::size_t predictor_resets = 0;
  double degradation_max = 0.0;
  // Propagation outcomes (platoon trials only; all zero on pair trials).
  /// Deepest follower at/behind the attacked one whose min gap fell below
  /// half the initial gap, counted from the attacked vehicle (0 = none).
  std::size_t shock_depth = 0;
  /// String-stability L-inf amplification of peak gap deviations.
  double linf_amplification = 0.0;
  std::size_t safe_stop_vehicles = 0;  ///< Followers that entered safe-stop.
  std::size_t detected_vehicles = 0;   ///< Followers whose detector fired.
  /// Non-empty when the trial threw instead of completing.
  std::string error;
};

const char* leader_name(core::LeaderScenario leader);
const char* attack_name(core::AttackKind attack);

/// Serializes a record as one canonical JSON line (fixed key order, shortest
/// round-trip doubles via std::to_chars) — byte-stable for goldens.
std::string to_jsonl(const TrialRecord& record);

/// Streaming consumer of campaign results. consume() is invoked on the
/// campaign caller's thread in ascending trial-id order; finish() once after
/// the last record.
class TrialSink {
 public:
  virtual ~TrialSink() = default;
  virtual void consume(const TrialRecord& record) = 0;
  virtual void finish() {}
};

/// Writes one JSON object per line to a stream as trials complete.
class JsonlWriter final : public TrialSink {
 public:
  explicit JsonlWriter(std::ostream& out) : out_(out) {}
  void consume(const TrialRecord& record) override;
  void finish() override;

 private:
  std::ostream& out_;
};

/// Aggregate statistics over a finished campaign.
struct CampaignSummary {
  std::size_t trials = 0;
  std::size_t errors = 0;
  std::size_t collisions = 0;
  double collision_rate = 0.0;

  std::size_t attacked_trials = 0;
  std::size_t detected = 0;
  std::size_t missed = 0;  ///< Attacked but never detected.
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  units::Seconds latency_mean_s{0.0};
  units::Seconds latency_p50_s{0.0};
  units::Seconds latency_p90_s{0.0};
  units::Seconds latency_max_s{0.0};

  units::Meters min_gap_min_m{0.0};
  units::Meters min_gap_p5_m{0.0};
  units::Meters min_gap_p50_m{0.0};
  units::Meters min_gap_mean_m{0.0};

  std::size_t holdover_trials = 0;  ///< Trials that ran on estimates at all.
  units::Meters holdover_rmse_mean_m{0.0};
  units::Meters holdover_rmse_max_m{0.0};

  std::size_t safe_stop_trials = 0;

  // Platoon propagation aggregates (zero / absent unless platoon trials ran;
  // format_summary prints the platoon block only when platoon_trials > 0).
  std::size_t platoon_trials = 0;
  double shock_depth_mean = 0.0;
  std::size_t shock_depth_max = 0;
  double linf_amplification_mean = 0.0;
  double linf_amplification_max = 0.0;
  std::size_t safe_stop_vehicles_total = 0;
  std::size_t detected_vehicles_total = 0;

  /// Trials whose attack came from the `--attack` spec language (zero on
  /// legacy enum-only campaigns; format_summary prints the spoofing block
  /// only when non-zero, keeping pre-spec summaries byte-identical).
  std::size_t spec_attack_trials = 0;
  std::size_t spec_attack_detected = 0;
};

/// Mergeable online accumulator. add() keeps only order-independent tallies
/// plus (trial id, value) samples; merge() concatenates; finalize() sorts by
/// trial id before reducing, so the result is identical no matter how trials
/// were sharded across workers.
class SummaryAccumulator {
 public:
  void add(const TrialRecord& record);
  void merge(const SummaryAccumulator& other);
  [[nodiscard]] CampaignSummary finalize() const;

 private:
  using Sample = std::pair<std::uint64_t, double>;

  std::size_t trials_ = 0;
  std::size_t errors_ = 0;
  std::size_t collisions_ = 0;
  std::size_t attacked_ = 0;
  std::size_t detected_ = 0;
  std::size_t missed_ = 0;
  std::size_t false_positives_ = 0;
  std::size_t false_negatives_ = 0;
  std::size_t safe_stop_trials_ = 0;
  std::size_t platoon_trials_ = 0;
  std::size_t safe_stop_vehicles_ = 0;
  std::size_t detected_vehicles_ = 0;
  std::size_t spec_attacked_ = 0;
  std::size_t spec_detected_ = 0;
  std::vector<Sample> latency_samples_;
  std::vector<Sample> min_gap_samples_;
  std::vector<Sample> holdover_rmse_samples_;
  std::vector<Sample> shock_depth_samples_;
  std::vector<Sample> linf_amplification_samples_;
};

/// Renders the summary as the aligned text block campaign_cli prints.
std::string format_summary(const CampaignSummary& summary);

}  // namespace safe::runtime
