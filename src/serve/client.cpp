#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "serve/net_util.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::serve {

namespace {

int poll_one(int fd, short events, int timeout_ms) {
  pollfd p{.fd = fd, .events = events, .revents = 0};
  return ::poll(&p, 1, timeout_ms) > 0 ? p.revents : 0;
}

int remaining_ms(std::uint64_t deadline_abs_ns) {
  const std::uint64_t now = telemetry::now_ns();
  if (now >= deadline_abs_ns) return 0;
  const std::uint64_t ms = (deadline_abs_ns - now) / 1'000'000ULL;
  return ms > 60'000 ? 60'000 : static_cast<int>(ms);
}

}  // namespace

SessionClient::~SessionClient() { close(); }

void SessionClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SessionClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error("socket() failed: " +
                             errno_string(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string what = errno_string(errno);
    close();
    throw std::runtime_error("connect(" + host + ":" + std::to_string(port) +
                             ") failed: " + what);
  }
  set_tcp_nodelay(fd_);
  decoder_ = FrameDecoder{};
  reason_.clear();
}

bool SessionClient::send_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    reason_ = std::string("send failed: ") + errno_string(errno);
    return false;
  }
  return true;
}

void SessionClient::send_raw(const std::vector<std::uint8_t>& bytes) {
  if (fd_ < 0) throw std::runtime_error("send_raw on closed client");
  if (!send_all(bytes.data(), bytes.size())) {
    throw std::runtime_error(reason_);
  }
}

std::optional<Frame> SessionClient::recv_frame(std::uint64_t deadline_ns) {
  const std::uint64_t deadline_abs = telemetry::now_ns() + deadline_ns;
  while (true) {
    if (std::optional<Frame> frame = decoder_.next(); frame.has_value()) {
      return frame;
    }
    if (decoder_.failed()) {
      reason_ = "decode failed: " + decoder_.error();
      return std::nullopt;
    }
    const int timeout = remaining_ms(deadline_abs);
    if (timeout == 0) {
      reason_ = "timed out waiting for frame";
      return std::nullopt;
    }
    const int revents = poll_one(fd_, POLLIN, timeout);
    if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    std::uint8_t buffer[16384];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      decoder_.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      reason_ = "connection closed by server";
      return std::nullopt;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    reason_ = std::string("recv failed: ") + errno_string(errno);
    return std::nullopt;
  }
}

SessionClient::OpenReply SessionClient::open_session(
    const HelloFrame& hello, std::uint64_t deadline_ns) {
  OpenReply reply;
  if (fd_ < 0) {
    reply.transport_error = "open_session on closed client";
    return reply;
  }
  const std::vector<std::uint8_t> bytes = encode(hello);
  if (!send_all(bytes.data(), bytes.size())) {
    reply.transport_error = reason_;
    return reply;
  }
  const std::optional<Frame> frame = recv_frame(deadline_ns);
  if (!frame.has_value()) {
    reply.transport_error = reason_;
    return reply;
  }
  std::string error;
  if (frame->type == FrameType::kStatus) {
    if (!decode(*frame, reply.status, &error)) {
      reply.transport_error = "bad STATUS reply: " + error;
      return reply;
    }
    reply.ok = reply.status.code == StatusCode::kHelloOk;
    return reply;
  }
  if (frame->type == FrameType::kError) {
    if (!decode(*frame, reply.error, &error)) {
      reply.transport_error = "bad ERROR reply: " + error;
      return reply;
    }
    reply.has_error = true;
    return reply;
  }
  reply.transport_error =
      std::string("unexpected handshake frame ") + to_string(frame->type);
  return reply;
}

SessionClient::StreamResult SessionClient::stream(
    const std::vector<MeasurementFrame>& measurements,
    std::uint64_t deadline_ns) {
  StreamResult result;
  if (fd_ < 0) {
    result.transport_error = "stream on closed client";
    return result;
  }

  // Pre-encode the whole trace into one buffer and remember where each
  // frame ends, so a frame's send timestamp is taken when its final byte
  // leaves the socket.
  std::vector<std::uint8_t> out;
  std::vector<std::size_t> frame_end;
  std::vector<std::int64_t> frame_step;
  frame_end.reserve(measurements.size());
  frame_step.reserve(measurements.size());
  for (const MeasurementFrame& m : measurements) {
    const std::vector<std::uint8_t> bytes = encode(m);
    out.insert(out.end(), bytes.begin(), bytes.end());
    frame_end.push_back(out.size());
    frame_step.push_back(m.step);
  }
  std::unordered_map<std::int64_t, std::uint64_t> send_ns;
  send_ns.reserve(measurements.size());

  const std::uint64_t deadline_abs = telemetry::now_ns() + deadline_ns;
  std::size_t sent = 0;
  std::size_t next_stamp = 0;
  const std::size_t expected = measurements.size();

  const auto pump_decoder = [&]() -> bool {  // false = stream ended
    while (true) {
      const std::optional<Frame> frame = decoder_.next();
      if (!frame.has_value()) break;
      std::string error;
      switch (frame->type) {
        case FrameType::kEstimate: {
          EstimateFrame estimate;
          if (!decode(*frame, estimate, &error)) {
            result.transport_error = "bad ESTIMATE: " + error;
            return false;
          }
          const std::uint64_t now = telemetry::now_ns();
          const auto it = send_ns.find(estimate.step);
          result.latencies_ns.push_back(
              it == send_ns.end() ? 0 : now - it->second);
          result.estimates.push_back(estimate);
          result.estimate_frames.push_back(encode(estimate));
          break;
        }
        case FrameType::kChallengeResult: {
          ChallengeResultFrame challenge;
          if (!decode(*frame, challenge, &error)) {
            result.transport_error = "bad CHALLENGE_RESULT: " + error;
            return false;
          }
          result.challenges.push_back(challenge);
          break;
        }
        case FrameType::kStatus: {
          StatusFrame status;
          if (!decode(*frame, status, &error)) {
            result.transport_error = "bad STATUS: " + error;
            return false;
          }
          result.status = status;
          return false;  // draining / slow consumer / idle timeout ends it
        }
        case FrameType::kError: {
          ErrorFrame err;
          if (!decode(*frame, err, &error)) {
            result.transport_error = "bad ERROR: " + error;
            return false;
          }
          result.error = err;
          return false;
        }
        default:
          result.transport_error =
              std::string("unexpected frame ") + to_string(frame->type);
          return false;
      }
    }
    if (decoder_.failed()) {
      result.transport_error = "decode failed: " + decoder_.error();
      return false;
    }
    return true;
  };

  while (result.estimates.size() < expected) {
    if (!pump_decoder()) return result;
    if (result.estimates.size() >= expected) break;

    const int timeout = remaining_ms(deadline_abs);
    if (timeout == 0) {
      result.transport_error = "timed out mid-stream";
      return result;
    }
    short events = POLLIN;
    if (sent < out.size()) events = static_cast<short>(events | POLLOUT);
    const int revents = poll_one(fd_, events, timeout);

    if ((revents & POLLOUT) != 0 && sent < out.size()) {
      const ssize_t n =
          ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        const std::uint64_t now = telemetry::now_ns();
        while (next_stamp < frame_end.size() &&
               frame_end[next_stamp] <= sent) {
          send_ns.emplace(frame_step[next_stamp], now);
          ++next_stamp;
        }
      } else if (n < 0 && errno != EINTR && errno != EAGAIN &&
                 errno != EWOULDBLOCK) {
        result.transport_error =
            std::string("send failed: ") + errno_string(errno);
        return result;
      }
    }
    if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      std::uint8_t buffer[16384];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), MSG_DONTWAIT);
      if (n > 0) {
        decoder_.feed(buffer, static_cast<std::size_t>(n));
      } else if (n == 0) {
        if (!pump_decoder()) return result;
        result.transport_error = "connection closed mid-stream";
        return result;
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        result.transport_error =
            std::string("recv failed: ") + errno_string(errno);
        return result;
      }
    }
  }

  result.complete = result.estimates.size() == expected;
  return result;
}

}  // namespace safe::serve
