#include "serve/resilient.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "runtime/seed.hpp"
#include "serve/net_util.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::serve {

namespace {

/// Cap on one ::send on the blocking socket, so a full socket buffer can
/// only stall one bounded write instead of the whole remaining trace.
constexpr std::size_t kMaxSendChunk = 16 * 1024;

int remaining_ms(std::uint64_t deadline_abs_ns) {
  const std::uint64_t now = telemetry::now_ns();
  if (now >= deadline_abs_ns) return 0;
  const std::uint64_t ms = (deadline_abs_ns - now) / 1'000'000ULL;
  return ms > 60'000 ? 60'000 : static_cast<int>(ms);
}

/// Outcome of one connection attempt (handshake or streaming phase).
enum class Phase : std::uint8_t {
  kDone,          ///< phase finished; check overall completion
  kDisconnected,  ///< transport cut or retryable STATUS; reconnect + resume
  kOverloaded,    ///< explicit shed; back off, reconnect + resume
  kRestart,       ///< resume rejected; forget the session and start over
  kDeadline,
  kFatalStatus,     ///< non-retryable STATUS (draining)
  kFatalError,      ///< fatal mid-stream ERROR
  kFatalHandshake,  ///< fatal ERROR answering HELLO
  kFatalResume,     ///< fatal ERROR answering RESUME (not unknown/gap)
  kFatalTransport,  ///< protocol violation we must not retry through
};

struct PhaseResult {
  Phase phase = Phase::kDisconnected;
  std::string detail;
  std::int64_t next_step = 0;  ///< handshake only: first step to send
  bool progressed = false;     ///< stream only: accepted >= 1 new estimate
};

/// Blocking frame receive. The connection's decoder is owned by the attempt
/// (not by SessionClient), so bytes the server sends right after RESUME_OK
/// stay in the same buffer the streaming phase drains.
std::optional<Frame> recv_next(int fd, FrameDecoder& decoder,
                               std::uint64_t deadline_abs,
                               std::string& reason) {
  while (true) {
    if (std::optional<Frame> frame = decoder.next(); frame.has_value()) {
      return frame;
    }
    if (decoder.failed()) {
      reason = "decode failed: " + decoder.error();
      return std::nullopt;
    }
    const int timeout = remaining_ms(deadline_abs);
    if (timeout == 0) {
      reason = "timed out waiting for frame";
      return std::nullopt;
    }
    pollfd p{.fd = fd, .events = POLLIN, .revents = 0};
    const int ready = ::poll(&p, 1, timeout);
    if (ready <= 0) continue;
    std::uint8_t buffer[16384];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      decoder.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      reason = "connection closed by server";
      return std::nullopt;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    reason = std::string("recv failed: ") + errno_string(errno);
    return std::nullopt;
  }
}

}  // namespace

const char* to_string(StreamFailure failure) {
  switch (failure) {
    case StreamFailure::kNone: return "none";
    case StreamFailure::kConnect: return "connect";
    case StreamFailure::kHandshake: return "handshake";
    case StreamFailure::kResumeRejected: return "resume-rejected";
    case StreamFailure::kDeadline: return "deadline";
    case StreamFailure::kServerStatus: return "server-status";
    case StreamFailure::kServerError: return "server-error";
    case StreamFailure::kTransport: return "transport";
    case StreamFailure::kAttemptsExhausted: return "attempts-exhausted";
  }
  return "?";
}

ResilientClient::ResilientClient(std::string host, std::uint16_t port,
                                 RetryPolicy policy)
    : host_(std::move(host)), port_(port), policy_(policy) {}

ResilientResult ResilientClient::run(const TraceSpec& spec,
                                     const std::string& client_id,
                                     const std::vector<MeasurementFrame>& trace,
                                     std::uint64_t deadline_ns) {
  ResilientResult r;
  const std::uint64_t deadline_abs = telemetry::now_ns() + deadline_ns;
  runtime::SplitMix64 jitter_rng(runtime::derive_seed(
      policy_.jitter_seed, runtime::SeedStream::kRetry, 0));
  std::uint64_t backoff = policy_.initial_backoff_ns;
  std::size_t attempts = 0;
  std::int64_t last_challenge_step = -1;

  const auto last_accepted = [&]() -> std::int64_t {
    return r.estimates.empty() ? -1 : r.estimates.back().step;
  };

  const auto fail = [&](StreamFailure failure, std::string detail) {
    r.failure = failure;
    r.failure_detail = std::move(detail);
  };

  // --- handshake: HELLO for a fresh session, RESUME otherwise --------------
  const auto handshake = [&](SessionClient& client,
                             FrameDecoder& decoder) -> PhaseResult {
    std::string reason;
    const int fd = client.native_handle();
    const bool fresh = r.session_token == 0;
    try {
      if (fresh) {
        client.send_raw(encode(hello_from(spec, client_id)));
      } else {
        client.send_raw(encode(ResumeFrame{.session_token = r.session_token,
                                           .last_step = last_accepted()}));
      }
    } catch (const std::exception& e) {
      return {.phase = Phase::kDisconnected, .detail = e.what()};
    }
    const std::optional<Frame> frame =
        recv_next(fd, decoder, deadline_abs, reason);
    if (!frame.has_value()) {
      return {.phase = telemetry::now_ns() >= deadline_abs
                           ? Phase::kDeadline
                           : Phase::kDisconnected,
              .detail = reason};
    }
    std::string error;
    if (frame->type == FrameType::kStatus) {
      StatusFrame status;
      if (!decode(*frame, status, &error)) {
        return {.phase = Phase::kDisconnected,
                .detail = "bad STATUS reply: " + error};
      }
      if (fresh && status.code == StatusCode::kHelloOk) {
        r.session_token = status.session_token;
        return {.phase = Phase::kDone,
                .detail = {},
                .next_step = last_accepted() + 1};
      }
      if (status.code == StatusCode::kOverloaded) {
        return {.phase = Phase::kOverloaded, .detail = status.message};
      }
      return {.phase = Phase::kFatalStatus,
              .detail =
                  std::string(to_string(status.code)) + ": " + status.message};
    }
    if (frame->type == FrameType::kResumeOk && !fresh) {
      ResumeOkFrame ok;
      if (!decode(*frame, ok, &error)) {
        return {.phase = Phase::kDisconnected,
                .detail = "bad RESUME_OK: " + error};
      }
      ++r.resumes;
      r.replayed_frames += ok.replayed_frames;
      return {.phase = Phase::kDone, .detail = {}, .next_step = ok.next_step};
    }
    if (frame->type == FrameType::kError) {
      ErrorFrame err;
      if (!decode(*frame, err, &error)) {
        return {.phase = Phase::kDisconnected,
                .detail = "bad ERROR reply: " + error};
      }
      const std::string detail =
          std::string(to_string(err.code)) + ": " + err.message;
      if (!fresh && (err.code == ErrorCode::kResumeUnknown ||
                     err.code == ErrorCode::kResumeGap)) {
        return {.phase = Phase::kRestart, .detail = detail};
      }
      return {.phase = fresh ? Phase::kFatalHandshake : Phase::kFatalResume,
              .detail = detail};
    }
    return {.phase = Phase::kDisconnected,
            .detail = std::string("unexpected handshake reply ") +
                      to_string(frame->type)};
  };

  // --- streaming phase -----------------------------------------------------
  // Sends measurements from `first_step` on, interleaving receives through
  // poll(); accepts only the estimate exactly one past the last one held,
  // so replays after a resume are deduplicated and delivery is exactly-once.
  const auto stream_phase = [&](SessionClient& client, FrameDecoder& decoder,
                                std::int64_t first_step) -> PhaseResult {
    PhaseResult out;
    const int fd = client.native_handle();

    std::vector<std::uint8_t> outbuf;
    std::vector<std::size_t> frame_end;
    std::vector<std::int64_t> frame_step;
    const std::size_t start =
        first_step < 0 ? 0
                       : std::min(static_cast<std::size_t>(first_step),
                                  trace.size());
    for (std::size_t i = start; i < trace.size(); ++i) {
      const std::vector<std::uint8_t> bytes = encode(trace[i]);
      outbuf.insert(outbuf.end(), bytes.begin(), bytes.end());
      frame_end.push_back(outbuf.size());
      frame_step.push_back(trace[i].step);
    }
    std::unordered_map<std::int64_t, std::uint64_t> send_ns;
    send_ns.reserve(trace.size() - start);
    std::size_t sent = 0;
    std::size_t next_stamp = 0;
    std::size_t accepted_since_ack = 0;

    // Drains every complete frame in the decoder. Returns kDone while the
    // stream should continue; anything else ends the attempt.
    const auto drain = [&]() -> Phase {
      while (true) {
        const std::optional<Frame> frame = decoder.next();
        if (!frame.has_value()) break;
        std::string error;
        switch (frame->type) {
          case FrameType::kEstimate: {
            EstimateFrame estimate;
            if (!decode(*frame, estimate, &error)) {
              out.detail = "bad ESTIMATE: " + error;
              return Phase::kDisconnected;
            }
            const std::int64_t last = last_accepted();
            if (estimate.step <= last) {
              ++r.duplicates_discarded;
              break;
            }
            if (estimate.step != last + 1) {
              out.detail = "estimate step " + std::to_string(estimate.step) +
                           " after step " + std::to_string(last);
              return Phase::kFatalTransport;
            }
            const std::uint64_t now = telemetry::now_ns();
            const auto it = send_ns.find(estimate.step);
            r.latencies_ns.push_back(it == send_ns.end() ? 0
                                                         : now - it->second);
            r.estimates.push_back(estimate);
            r.estimate_frames.push_back(encode(estimate));
            out.progressed = true;
            if (++accepted_since_ack >= policy_.ack_every) {
              accepted_since_ack = 0;
              const std::vector<std::uint8_t> ack =
                  encode(AckFrame{.last_step = estimate.step});
              outbuf.insert(outbuf.end(), ack.begin(), ack.end());
            }
            break;
          }
          case FrameType::kChallengeResult: {
            ChallengeResultFrame challenge;
            if (!decode(*frame, challenge, &error)) {
              out.detail = "bad CHALLENGE_RESULT: " + error;
              return Phase::kDisconnected;
            }
            if (challenge.step > last_challenge_step) {
              last_challenge_step = challenge.step;
              r.challenges.push_back(challenge);
            } else {
              ++r.duplicates_discarded;
            }
            break;
          }
          case FrameType::kStatus: {
            StatusFrame status;
            if (!decode(*frame, status, &error)) {
              out.detail = "bad STATUS: " + error;
              return Phase::kDisconnected;
            }
            out.detail =
                std::string(to_string(status.code)) + ": " + status.message;
            if (status.code == StatusCode::kOverloaded) {
              return Phase::kOverloaded;
            }
            if (status.code == StatusCode::kDraining) {
              return Phase::kFatalStatus;
            }
            // Slow consumer / idle timeout: the connection is gone but the
            // session may be resumable.
            return Phase::kDisconnected;
          }
          case FrameType::kError: {
            ErrorFrame err;
            if (!decode(*frame, err, &error)) {
              out.detail = "bad ERROR: " + error;
              return Phase::kDisconnected;
            }
            out.detail = std::string(to_string(err.code)) + ": " + err.message;
            return Phase::kFatalError;
          }
          default:
            out.detail =
                std::string("unexpected frame ") + to_string(frame->type);
            return Phase::kFatalTransport;
        }
      }
      if (decoder.failed()) {
        // Corrupted bytes (chaos) — tear down and resume on a clean link.
        out.detail = "decode failed: " + decoder.error();
        return Phase::kDisconnected;
      }
      return Phase::kDone;
    };

    while (r.estimates.size() < trace.size()) {
      const Phase drained = drain();
      if (drained != Phase::kDone) {
        out.phase = drained;
        return out;
      }
      if (r.estimates.size() >= trace.size()) break;

      const int timeout = remaining_ms(deadline_abs);
      if (timeout == 0) {
        out.phase = Phase::kDeadline;
        out.detail = "timed out mid-stream";
        return out;
      }
      short events = POLLIN;
      if (sent < outbuf.size()) events = static_cast<short>(events | POLLOUT);
      pollfd p{.fd = fd, .events = events, .revents = 0};
      if (::poll(&p, 1, timeout) <= 0) continue;

      if ((p.revents & POLLOUT) != 0 && sent < outbuf.size()) {
        const std::size_t chunk =
            std::min(outbuf.size() - sent, kMaxSendChunk);
        const ssize_t n =
            ::send(fd, outbuf.data() + sent, chunk, MSG_NOSIGNAL);
        if (n > 0) {
          sent += static_cast<std::size_t>(n);
          const std::uint64_t now = telemetry::now_ns();
          while (next_stamp < frame_end.size() &&
                 frame_end[next_stamp] <= sent) {
            send_ns.emplace(frame_step[next_stamp], now);
            ++next_stamp;
          }
        } else if (n < 0 && errno != EINTR && errno != EAGAIN &&
                   errno != EWOULDBLOCK) {
          out.phase = Phase::kDisconnected;
          out.detail = std::string("send failed: ") + errno_string(errno);
          return out;
        }
      }
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        std::uint8_t buffer[16384];
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), MSG_DONTWAIT);
        if (n > 0) {
          decoder.feed(buffer, static_cast<std::size_t>(n));
        } else if (n == 0) {
          const Phase final_drain = drain();
          if (final_drain != Phase::kDone) {
            out.phase = final_drain;
            return out;
          }
          if (r.estimates.size() >= trace.size()) break;
          out.phase = Phase::kDisconnected;
          out.detail = "connection closed mid-stream";
          return out;
        } else if (errno != EINTR && errno != EAGAIN &&
                   errno != EWOULDBLOCK) {
          out.phase = Phase::kDisconnected;
          out.detail = std::string("recv failed: ") + errno_string(errno);
          return out;
        }
      }
    }
    out.phase = Phase::kDone;
    return out;
  };

  // --- retry loop ----------------------------------------------------------
  while (true) {
    if (r.estimates.size() == trace.size()) {
      r.complete = true;
      r.failure = StreamFailure::kNone;
      r.failure_detail.clear();
      break;
    }
    if (telemetry::now_ns() >= deadline_abs) {
      if (r.failure == StreamFailure::kNone) {
        fail(StreamFailure::kDeadline, "deadline expired");
      } else {
        r.failure = StreamFailure::kDeadline;
      }
      break;
    }
    if (attempts >= policy_.max_attempts) {
      fail(StreamFailure::kAttemptsExhausted,
           "retry budget spent after " + std::to_string(attempts) +
               " attempts (last: " + std::string(to_string(r.failure)) +
               (r.failure_detail.empty() ? "" : ", " + r.failure_detail) +
               ")");
      break;
    }
    if (attempts > 0) {
      const std::uint64_t jitter = static_cast<std::uint64_t>(
          runtime::uniform_double(jitter_rng) * static_cast<double>(backoff) *
          0.5);
      std::uint64_t sleep_ns = backoff + jitter;
      const std::uint64_t now = telemetry::now_ns();
      if (now + sleep_ns > deadline_abs) sleep_ns = deadline_abs - now;
      std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
      backoff = std::min(static_cast<std::uint64_t>(
                             static_cast<double>(backoff) * policy_.multiplier),
                         policy_.max_backoff_ns);
    }
    ++attempts;

    SessionClient client;
    try {
      client.connect(host_, port_);
    } catch (const std::exception& e) {
      fail(StreamFailure::kConnect, e.what());
      continue;
    }
    ++r.connects;
    if (r.connects > 1) ++r.reconnects;

    FrameDecoder decoder;
    const PhaseResult hs = handshake(client, decoder);
    bool fatal = false;
    switch (hs.phase) {
      case Phase::kDone:
        break;
      case Phase::kOverloaded:
        ++r.overload_backoffs;
        fail(StreamFailure::kTransport, "shed: " + hs.detail);
        continue;
      case Phase::kRestart:
        ++r.restarts;
        r.session_token = 0;
        r.estimates.clear();
        r.estimate_frames.clear();
        r.challenges.clear();
        r.latencies_ns.clear();
        last_challenge_step = -1;
        fail(StreamFailure::kTransport, "restart: " + hs.detail);
        continue;
      case Phase::kDisconnected:
        fail(StreamFailure::kTransport, hs.detail);
        continue;
      case Phase::kDeadline:
        fail(StreamFailure::kDeadline, hs.detail);
        fatal = true;
        break;
      case Phase::kFatalStatus:
        fail(StreamFailure::kServerStatus, hs.detail);
        fatal = true;
        break;
      case Phase::kFatalHandshake:
        fail(StreamFailure::kHandshake, hs.detail);
        fatal = true;
        break;
      case Phase::kFatalResume:
        fail(StreamFailure::kResumeRejected, hs.detail);
        fatal = true;
        break;
      default:
        fail(StreamFailure::kTransport, hs.detail);
        fatal = true;
        break;
    }
    if (fatal) break;

    const PhaseResult sp = stream_phase(client, decoder, hs.next_step);
    if (sp.progressed) backoff = policy_.initial_backoff_ns;
    if (sp.phase == Phase::kDone) {
      // Final ACK releases the server's replay buffer, so a fully delivered
      // session is destroyed on close instead of lingering in the resumable
      // cache for the grace window. Best-effort: losing it only delays the
      // server-side cleanup.
      if (r.estimates.size() == trace.size() && !r.estimates.empty()) {
        try {
          client.send_raw(encode(AckFrame{.last_step = r.estimates.back().step}));
        } catch (...) {
        }
      }
      continue;
    }
    if (sp.phase == Phase::kOverloaded) {
      ++r.overload_backoffs;
      fail(StreamFailure::kTransport, "shed: " + sp.detail);
      continue;
    }
    if (sp.phase == Phase::kDisconnected) {
      fail(StreamFailure::kTransport, sp.detail);
      continue;
    }
    if (sp.phase == Phase::kDeadline) {
      fail(StreamFailure::kDeadline, sp.detail);
    } else if (sp.phase == Phase::kFatalStatus) {
      fail(StreamFailure::kServerStatus, sp.detail);
    } else if (sp.phase == Phase::kFatalError) {
      fail(StreamFailure::kServerError, sp.detail);
    } else {
      fail(StreamFailure::kTransport, sp.detail);
    }
    break;
  }
  return r;
}

}  // namespace safe::serve
