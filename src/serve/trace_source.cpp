#include "serve/trace_source.hpp"

#include <utility>

#include "attack/attack.hpp"
#include "fault/schedule.hpp"
#include "radar/link_budget.hpp"
#include "vehicle/longitudinal.hpp"

namespace safe::serve {

TraceSpec spec_from(const HelloFrame& hello) {
  TraceSpec spec;
  spec.leader = hello.leader;
  spec.attack = hello.attack;
  spec.attack_start_s = hello.attack_start_s;
  spec.attack_end_s = hello.attack_end_s;
  spec.estimator = hello.estimator;
  spec.hardened = hello.hardened;
  spec.seed = hello.scenario_seed;
  spec.horizon_steps = hello.horizon_steps;
  spec.fault_spec = hello.fault_spec;
  spec.detector_spec = hello.detector_spec;
  return spec;
}

HelloFrame hello_from(const TraceSpec& spec, std::string client_id) {
  HelloFrame hello;
  hello.protocol_version = kProtocolVersion;
  hello.scenario_seed = spec.seed;
  hello.horizon_steps = spec.horizon_steps;
  hello.leader = spec.leader;
  hello.attack = spec.attack;
  hello.estimator = spec.estimator;
  hello.hardened = spec.hardened;
  hello.attack_start_s = spec.attack_start_s;
  hello.attack_end_s = spec.attack_end_s;
  hello.client_id = std::move(client_id);
  hello.fault_spec = spec.fault_spec;
  hello.detector_spec = spec.detector_spec;
  return hello;
}

namespace {

core::ScenarioOptions scenario_options_for(const TraceSpec& spec) {
  core::ScenarioOptions options;
  options.leader = spec.leader;
  options.attack = spec.attack;
  options.attack_start_s = spec.attack_start_s;
  options.attack_end_s = spec.attack_end_s;
  options.estimator = spec.estimator;
  options.seed = spec.seed;
  options.horizon_steps = spec.horizon_steps;
  options.pipeline = pipeline_options_for(spec);
  options.fault_spec = spec.fault_spec;
  return options;
}

}  // namespace

core::PipelineOptions pipeline_options_for(const TraceSpec& spec) {
  core::PipelineOptions options = spec.hardened
                                      ? core::hardened_pipeline_options()
                                      : core::PipelineOptions{};
  options.detector_spec = spec.detector_spec;
  return options;
}

core::SafeMeasurementPipeline build_session_pipeline(const TraceSpec& spec) {
  if (spec.horizon_steps <= 0) {
    throw std::invalid_argument(
        "TraceSpec: horizon_steps must be positive, got " +
        std::to_string(spec.horizon_steps));
  }
  auto schedule = std::make_shared<cra::FixedChallengeSchedule>(
      cra::paper_challenge_schedule(spec.horizon_steps));
  return core::make_default_pipeline(std::move(schedule),
                                     pipeline_options_for(spec));
}

std::vector<MeasurementFrame> make_measurement_trace(const TraceSpec& spec) {
  // make_paper_scenario validates the options and assembles the leader
  // profile, attack window, radar config, and challenge schedule exactly as
  // the closed-loop simulation would.
  const core::Scenario scenario = make_paper_scenario(scenario_options_for(spec));
  const core::CarFollowingConfig& config = scenario.config;
  const radar::FmcwParameters& wf = config.radar.waveform;
  const units::Seconds t_sample = config.sample_time_s;

  radar::RadarProcessor radar(config.radar, config.seed);
  fault::FaultSchedule faults =
      config.faults ? *config.faults : fault::FaultSchedule{};
  faults.reset();

  // Open loop: the follower mirrors the leader's acceleration, holding the
  // true gap at the initial 100 m. The serving layer never closes the
  // control loop — it only maps measurements to estimates — so the stream
  // needs no controller.
  vehicle::VehicleState leader{.position_m = config.initial_gap_m,
                               .velocity_mps = config.leader_speed_mps};
  vehicle::VehicleState follower{.position_m = units::Meters{0.0},
                                 .velocity_mps = config.leader_speed_mps};

  std::vector<MeasurementFrame> frames;
  frames.reserve(static_cast<std::size_t>(config.horizon_steps));

  // Per-trace clone: stateful attack models restart for every trace.
  std::unique_ptr<attack::AttackModel> attack =
      scenario.attack ? scenario.attack->clone() : nullptr;
  if (attack) attack->reset();

  for (std::int64_t k = 0; k < config.horizon_steps; ++k) {
    const units::Seconds t = static_cast<double>(k) * t_sample;
    const units::MetersPerSecond2 accel =
        scenario.leader->acceleration(t);
    leader = vehicle::step(leader, accel, t_sample);
    follower = vehicle::step(follower, accel, t_sample);

    const units::Meters true_gap = vehicle::gap(leader, follower);
    const units::MetersPerSecond true_dv =
        vehicle::relative_velocity(leader, follower);

    radar::EchoScene scene;
    scene.tx_enabled = !scenario.schedule->is_challenge(k);
    scene.noise_power_w = config.radar.noise_floor_w;
    const bool in_window =
        true_gap >= wf.min_range_m && true_gap <= wf.max_range_m;
    double echo_power = 0.0;
    if (in_window) {
      echo_power =
          radar::received_echo_power_w(wf, true_gap, config.target_rcs_m2);
      if (scene.tx_enabled) {
        scene.echoes.push_back(radar::EchoComponent{
            .distance_m = true_gap,
            .range_rate_mps = true_dv,
            .power_w = echo_power,
        });
      }
    }

    if (attack) {
      const attack::AttackContext ctx{
          .time_s = t,
          .step = k,
          .true_distance_m = true_gap,
          .true_range_rate_mps = true_dv,
          .true_echo_power_w = echo_power,
          .waveform = &wf,
      };
      attack->apply(ctx, scene);
    }

    radar::RadarMeasurement meas = radar.measure(scene);
    if (!faults.empty()) {
      meas = faults.apply(k, scenario.schedule->is_challenge(k), meas);
    }
    frames.push_back(MeasurementFrame{.step = k, .measurement = meas});
  }
  return frames;
}

std::vector<EstimateFrame> run_offline(
    const TraceSpec& spec, const std::vector<MeasurementFrame>& measurements) {
  core::SafeMeasurementPipeline pipeline = build_session_pipeline(spec);
  std::vector<EstimateFrame> estimates;
  estimates.reserve(measurements.size());
  for (const MeasurementFrame& m : measurements) {
    estimates.push_back(EstimateFrame{
        .step = m.step,
        .safe = pipeline.process(m.step, m.measurement),
    });
  }
  return estimates;
}

}  // namespace safe::serve
