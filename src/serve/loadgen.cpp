#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "runtime/seed.hpp"
#include "serve/client.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::serve {

namespace {

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

LoadReport run_load(const LoadOptions& options) {
  if (options.sessions == 0 || options.connections == 0) {
    throw std::invalid_argument("loadgen needs >=1 session and connection");
  }
  if (options.port == 0) {
    throw std::invalid_argument("loadgen needs an explicit port");
  }

  LoadReport report;
  report.sessions_attempted = options.sessions;

  std::mutex merge_mutex;
  std::vector<std::uint64_t> all_latencies;
  std::atomic<std::size_t> next_session{0};
  const std::size_t workers = std::min(options.connections, options.sessions);

  const auto record_error = [&](std::string message) {
    std::lock_guard<std::mutex> guard(merge_mutex);
    ++report.sessions_failed;
    if (report.errors.size() < 8) report.errors.push_back(std::move(message));
  };

  const std::uint64_t start_ns = telemetry::now_ns();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      while (true) {
        const std::size_t index =
            next_session.fetch_add(1, std::memory_order_relaxed);
        if (index >= options.sessions) return;

        TraceSpec spec = options.spec;
        spec.seed = runtime::derive_seed(options.master_seed,
                                         runtime::SeedStream::kScenario,
                                         static_cast<std::uint64_t>(index));
        const std::string client_id =
            "loadgen-" + std::to_string(index);
        std::vector<MeasurementFrame> trace;
        try {
          trace = make_measurement_trace(spec);
        } catch (const std::exception& e) {
          record_error(client_id + ": trace generation failed: " + e.what());
          continue;
        }

        SessionClient client;
        try {
          client.connect(options.host, options.port);
        } catch (const std::exception& e) {
          record_error(client_id + ": " + e.what());
          continue;
        }
        const SessionClient::OpenReply open =
            client.open_session(hello_from(spec, client_id),
                                options.deadline_ns);
        if (!open.ok) {
          record_error(client_id + ": handshake failed: " +
                       (open.has_error ? open.error.message
                                       : open.transport_error));
          continue;
        }

        SessionClient::StreamResult stream =
            client.stream(trace, options.deadline_ns);
        std::uint64_t mismatches = 0;
        std::size_t verified = 0;
        if (options.verify && stream.complete) {
          const std::vector<EstimateFrame> reference =
              run_offline(spec, trace);
          if (reference.size() != stream.estimate_frames.size()) {
            mismatches = reference.size() > stream.estimate_frames.size()
                             ? reference.size() - stream.estimate_frames.size()
                             : stream.estimate_frames.size() -
                                   reference.size();
          } else {
            for (std::size_t i = 0; i < reference.size(); ++i) {
              if (encode(reference[i]) != stream.estimate_frames[i]) {
                ++mismatches;
              }
            }
          }
          if (mismatches == 0) verified = 1;
        }

        std::lock_guard<std::mutex> guard(merge_mutex);
        report.frames_sent += trace.size();
        report.estimates_received += stream.estimates.size();
        report.challenges_received += stream.challenges.size();
        report.verify_mismatched_frames += mismatches;
        report.sessions_verified += verified;
        all_latencies.insert(all_latencies.end(), stream.latencies_ns.begin(),
                             stream.latencies_ns.end());
        if (stream.complete) {
          ++report.sessions_completed;
          if (mismatches != 0 && report.errors.size() < 8) {
            report.errors.push_back(client_id + ": " +
                                    std::to_string(mismatches) +
                                    " estimate frames differ from offline "
                                    "reference");
          }
        } else {
          ++report.sessions_failed;
          if (report.errors.size() < 8) {
            std::string why = stream.transport_error;
            if (why.empty() && stream.error.has_value()) {
              why = "server ERROR: " + stream.error->message;
            }
            if (why.empty() && stream.status.has_value()) {
              why = std::string("server STATUS ") +
                    to_string(stream.status->code) + ": " +
                    stream.status->message;
            }
            if (why.empty()) why = "incomplete stream";
            report.errors.push_back(client_id + ": " + why);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  report.elapsed_ns = telemetry::now_ns() - start_ns;

  std::sort(all_latencies.begin(), all_latencies.end());
  report.latency_p50_ns = percentile(all_latencies, 0.50);
  report.latency_p95_ns = percentile(all_latencies, 0.95);
  report.latency_p99_ns = percentile(all_latencies, 0.99);
  report.latency_max_ns =
      all_latencies.empty() ? 0 : all_latencies.back();
  if (report.elapsed_ns > 0) {
    report.throughput_frames_per_s =
        static_cast<double>(report.estimates_received) * 1e9 /
        static_cast<double>(report.elapsed_ns);
  }
  return report;
}

std::string to_json(const LoadReport& report) {
  std::ostringstream out;
  out << "{";
  out << "\"sessions_attempted\":" << report.sessions_attempted;
  out << ",\"sessions_completed\":" << report.sessions_completed;
  out << ",\"sessions_failed\":" << report.sessions_failed;
  out << ",\"frames_sent\":" << report.frames_sent;
  out << ",\"estimates_received\":" << report.estimates_received;
  out << ",\"challenges_received\":" << report.challenges_received;
  out << ",\"sessions_verified\":" << report.sessions_verified;
  out << ",\"verify_mismatched_frames\":" << report.verify_mismatched_frames;
  out << ",\"elapsed_ns\":" << report.elapsed_ns;
  out << ",\"throughput_frames_per_s\":" << report.throughput_frames_per_s;
  out << ",\"latency_p50_ns\":" << report.latency_p50_ns;
  out << ",\"latency_p95_ns\":" << report.latency_p95_ns;
  out << ",\"latency_p99_ns\":" << report.latency_p99_ns;
  out << ",\"latency_max_ns\":" << report.latency_max_ns;
  out << ",\"ok\":" << (report.ok() ? "true" : "false");
  out << ",\"errors\":[";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"";
    for (const char c : report.errors[i]) {
      if (c == '"' || c == '\\') {
        out << '\\' << c;
      } else if (c == '\n') {
        out << "\\n";
      } else {
        out << c;
      }
    }
    out << "\"";
  }
  out << "]}";
  return out.str();
}

}  // namespace safe::serve
