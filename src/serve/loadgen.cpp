#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "runtime/seed.hpp"
#include "serve/client.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::serve {

namespace {

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

SessionErrorKind classify(StreamFailure failure) {
  switch (failure) {
    case StreamFailure::kConnect: return SessionErrorKind::kConnectRefused;
    case StreamFailure::kHandshake:
    case StreamFailure::kResumeRejected:
      return SessionErrorKind::kHandshakeRejected;
    case StreamFailure::kDeadline: return SessionErrorKind::kDeadlineExceeded;
    case StreamFailure::kServerStatus: return SessionErrorKind::kServerStatus;
    case StreamFailure::kServerError: return SessionErrorKind::kServerError;
    case StreamFailure::kTransport: return SessionErrorKind::kTransport;
    case StreamFailure::kAttemptsExhausted:
      return SessionErrorKind::kRetriesExhausted;
    case StreamFailure::kNone: break;
  }
  return SessionErrorKind::kIncompleteStream;
}

/// Byte-compares received estimate frames against the offline reference.
/// Returns the mismatch count (0 = verified).
std::uint64_t count_mismatches(
    const TraceSpec& spec, const std::vector<MeasurementFrame>& trace,
    const std::vector<std::vector<std::uint8_t>>& estimate_frames) {
  const std::vector<EstimateFrame> reference = run_offline(spec, trace);
  if (reference.size() != estimate_frames.size()) {
    return reference.size() > estimate_frames.size()
               ? reference.size() - estimate_frames.size()
               : estimate_frames.size() - reference.size();
  }
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (encode(reference[i]) != estimate_frames[i]) ++mismatches;
  }
  return mismatches;
}

}  // namespace

const char* to_string(SessionErrorKind kind) {
  switch (kind) {
    case SessionErrorKind::kConnectRefused: return "connect-refused";
    case SessionErrorKind::kHandshakeRejected: return "handshake-rejected";
    case SessionErrorKind::kOverloaded: return "overloaded";
    case SessionErrorKind::kDeadlineExceeded: return "deadline-exceeded";
    case SessionErrorKind::kVerifyMismatch: return "verify-mismatch";
    case SessionErrorKind::kTransport: return "transport";
    case SessionErrorKind::kServerError: return "server-error";
    case SessionErrorKind::kServerStatus: return "server-status";
    case SessionErrorKind::kIncompleteStream: return "incomplete-stream";
    case SessionErrorKind::kTraceGeneration: return "trace-generation";
    case SessionErrorKind::kRetriesExhausted: return "retries-exhausted";
  }
  return "?";
}

LoadReport run_load(const LoadOptions& options) {
  if (options.sessions == 0 || options.connections == 0) {
    throw std::invalid_argument("loadgen needs >=1 session and connection");
  }
  if (options.port == 0) {
    throw std::invalid_argument("loadgen needs an explicit port");
  }

  LoadReport report;
  report.sessions_attempted = options.sessions;

  std::mutex merge_mutex;
  std::vector<std::uint64_t> all_latencies;
  std::atomic<std::size_t> next_session{0};
  const std::size_t workers = std::min(options.connections, options.sessions);

  // Counts the failure under its kind; `failed` distinguishes a failed
  // session from a completed-but-mismatched one (which ok() still rejects).
  const auto record_error = [&](std::size_t index, SessionErrorKind kind,
                                std::string detail, bool failed = true) {
    std::lock_guard<std::mutex> guard(merge_mutex);
    if (failed) ++report.sessions_failed;
    ++report.error_counts[static_cast<std::size_t>(kind)];
    if (report.session_errors.size() < 16) {
      report.session_errors.push_back(
          SessionError{.session = index, .kind = kind, .detail = detail});
    }
    if (report.errors.size() < 8) {
      report.errors.push_back("loadgen-" + std::to_string(index) + ": [" +
                              to_string(kind) + "] " + std::move(detail));
    }
  };

  const std::uint64_t start_ns = telemetry::now_ns();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      while (true) {
        const std::size_t index =
            next_session.fetch_add(1, std::memory_order_relaxed);
        if (index >= options.sessions) return;

        TraceSpec spec = options.spec;
        spec.seed = runtime::derive_seed(options.master_seed,
                                         runtime::SeedStream::kScenario,
                                         static_cast<std::uint64_t>(index));
        const std::string client_id =
            "loadgen-" + std::to_string(index);
        std::vector<MeasurementFrame> trace;
        try {
          trace = make_measurement_trace(spec);
        } catch (const std::exception& e) {
          record_error(index, SessionErrorKind::kTraceGeneration, e.what());
          continue;
        }

        if (options.retry_attempts > 0) {
          RetryPolicy policy = options.retry;
          policy.max_attempts = options.retry_attempts;
          policy.jitter_seed = runtime::derive_seed(
              options.master_seed, runtime::SeedStream::kRetry,
              static_cast<std::uint64_t>(index));
          ResilientClient resilient(options.host, options.port, policy);
          const ResilientResult result =
              resilient.run(spec, client_id, trace, options.deadline_ns);

          std::uint64_t mismatches = 0;
          if (options.verify && result.complete) {
            mismatches = count_mismatches(spec, trace, result.estimate_frames);
          }
          {
            std::lock_guard<std::mutex> guard(merge_mutex);
            report.frames_sent += trace.size();
            report.estimates_received += result.estimates.size();
            report.challenges_received += result.challenges.size();
            report.verify_mismatched_frames += mismatches;
            if (options.verify && result.complete && mismatches == 0) {
              ++report.sessions_verified;
            }
            if (result.complete) ++report.sessions_completed;
            report.reconnects += result.reconnects;
            report.resumes += result.resumes;
            report.restarts += result.restarts;
            report.overload_backoffs += result.overload_backoffs;
            report.duplicates_discarded += result.duplicates_discarded;
            report.replayed_frames += result.replayed_frames;
            all_latencies.insert(all_latencies.end(),
                                 result.latencies_ns.begin(),
                                 result.latencies_ns.end());
          }
          if (!result.complete) {
            record_error(index, classify(result.failure),
                         std::string(to_string(result.failure)) +
                             (result.failure_detail.empty()
                                  ? ""
                                  : ": " + result.failure_detail));
          } else if (mismatches != 0) {
            record_error(index, SessionErrorKind::kVerifyMismatch,
                         std::to_string(mismatches) +
                             " estimate frames differ from offline reference",
                         /*failed=*/false);
          }
          continue;
        }

        SessionClient client;
        try {
          client.connect(options.host, options.port);
        } catch (const std::exception& e) {
          record_error(index, SessionErrorKind::kConnectRefused, e.what());
          continue;
        }
        const SessionClient::OpenReply open =
            client.open_session(hello_from(spec, client_id),
                                options.deadline_ns);
        if (!open.ok) {
          SessionErrorKind kind = SessionErrorKind::kHandshakeRejected;
          std::string why;
          if (open.has_error) {
            why = open.error.message;
          } else if (!open.transport_error.empty()) {
            kind = SessionErrorKind::kTransport;
            why = open.transport_error;
          } else {
            if (open.status.code == StatusCode::kOverloaded) {
              kind = SessionErrorKind::kOverloaded;
            }
            why = std::string(to_string(open.status.code)) + ": " +
                  open.status.message;
          }
          record_error(index, kind, "handshake failed: " + why);
          continue;
        }

        SessionClient::StreamResult stream =
            client.stream(trace, options.deadline_ns);
        std::uint64_t mismatches = 0;
        std::size_t verified = 0;
        if (options.verify && stream.complete) {
          mismatches = count_mismatches(spec, trace, stream.estimate_frames);
          if (mismatches == 0) verified = 1;
        }

        {
          std::lock_guard<std::mutex> guard(merge_mutex);
          report.frames_sent += trace.size();
          report.estimates_received += stream.estimates.size();
          report.challenges_received += stream.challenges.size();
          report.verify_mismatched_frames += mismatches;
          report.sessions_verified += verified;
          all_latencies.insert(all_latencies.end(),
                               stream.latencies_ns.begin(),
                               stream.latencies_ns.end());
          if (stream.complete) ++report.sessions_completed;
        }
        if (stream.complete) {
          if (mismatches != 0) {
            record_error(index, SessionErrorKind::kVerifyMismatch,
                         std::to_string(mismatches) +
                             " estimate frames differ from offline reference",
                         /*failed=*/false);
          }
        } else {
          SessionErrorKind kind = SessionErrorKind::kIncompleteStream;
          std::string why = stream.transport_error;
          if (!why.empty()) {
            kind = why.find("timed out") != std::string::npos
                       ? SessionErrorKind::kDeadlineExceeded
                       : SessionErrorKind::kTransport;
          } else if (stream.error.has_value()) {
            kind = SessionErrorKind::kServerError;
            why = "server ERROR: " + stream.error->message;
          } else if (stream.status.has_value()) {
            kind = stream.status->code == StatusCode::kOverloaded
                       ? SessionErrorKind::kOverloaded
                       : SessionErrorKind::kServerStatus;
            why = std::string("server STATUS ") +
                  to_string(stream.status->code) + ": " +
                  stream.status->message;
          }
          if (why.empty()) why = "incomplete stream";
          record_error(index, kind, why);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  report.elapsed_ns = telemetry::now_ns() - start_ns;

  std::sort(all_latencies.begin(), all_latencies.end());
  report.latency_p50_ns = percentile(all_latencies, 0.50);
  report.latency_p95_ns = percentile(all_latencies, 0.95);
  report.latency_p99_ns = percentile(all_latencies, 0.99);
  report.latency_max_ns =
      all_latencies.empty() ? 0 : all_latencies.back();
  if (report.elapsed_ns > 0) {
    report.throughput_frames_per_s =
        static_cast<double>(report.estimates_received) * 1e9 /
        static_cast<double>(report.elapsed_ns);
  }
  return report;
}

std::string to_json(const LoadReport& report) {
  const auto escape = [](std::ostringstream& out, const std::string& text) {
    out << "\"";
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        out << '\\' << c;
      } else if (c == '\n') {
        out << "\\n";
      } else {
        out << c;
      }
    }
    out << "\"";
  };

  std::ostringstream out;
  out << "{";
  out << "\"sessions_attempted\":" << report.sessions_attempted;
  out << ",\"sessions_completed\":" << report.sessions_completed;
  out << ",\"sessions_failed\":" << report.sessions_failed;
  out << ",\"frames_sent\":" << report.frames_sent;
  out << ",\"estimates_received\":" << report.estimates_received;
  out << ",\"challenges_received\":" << report.challenges_received;
  out << ",\"sessions_verified\":" << report.sessions_verified;
  out << ",\"verify_mismatched_frames\":" << report.verify_mismatched_frames;
  out << ",\"elapsed_ns\":" << report.elapsed_ns;
  out << ",\"throughput_frames_per_s\":" << report.throughput_frames_per_s;
  out << ",\"latency_p50_ns\":" << report.latency_p50_ns;
  out << ",\"latency_p95_ns\":" << report.latency_p95_ns;
  out << ",\"latency_p99_ns\":" << report.latency_p99_ns;
  out << ",\"latency_max_ns\":" << report.latency_max_ns;
  out << ",\"reconnects\":" << report.reconnects;
  out << ",\"resumes\":" << report.resumes;
  out << ",\"restarts\":" << report.restarts;
  out << ",\"overload_backoffs\":" << report.overload_backoffs;
  out << ",\"duplicates_discarded\":" << report.duplicates_discarded;
  out << ",\"replayed_frames\":" << report.replayed_frames;
  out << ",\"ok\":" << (report.ok() ? "true" : "false");
  out << ",\"error_counts\":{";
  bool first = true;
  for (std::size_t k = 0; k < kSessionErrorKindCount; ++k) {
    if (report.error_counts[k] == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << to_string(static_cast<SessionErrorKind>(k))
        << "\":" << report.error_counts[k];
  }
  out << "}";
  out << ",\"session_errors\":[";
  for (std::size_t i = 0; i < report.session_errors.size(); ++i) {
    if (i > 0) out << ",";
    const SessionError& error = report.session_errors[i];
    out << "{\"session\":" << error.session << ",\"kind\":\""
        << to_string(error.kind) << "\",\"detail\":";
    escape(out, error.detail);
    out << "}";
  }
  out << "]";
  out << ",\"errors\":[";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    if (i > 0) out << ",";
    escape(out, report.errors[i]);
  }
  out << "]}";
  return out.str();
}

}  // namespace safe::serve
