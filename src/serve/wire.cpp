#include "serve/wire.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

namespace safe::serve {

namespace {

// Flag bit assignments (reserved bits must be zero on the wire).
constexpr std::uint8_t kMeasCoherentEcho = 1u << 0;
constexpr std::uint8_t kMeasPowerAlarm = 1u << 1;
constexpr std::uint8_t kMeasReserved =
    static_cast<std::uint8_t>(~(kMeasCoherentEcho | kMeasPowerAlarm));

constexpr std::uint16_t kEstTargetPresent = 1u << 0;
constexpr std::uint16_t kEstEstimated = 1u << 1;
constexpr std::uint16_t kEstUnderAttack = 1u << 2;
constexpr std::uint16_t kEstChallengeSlot = 1u << 3;
constexpr std::uint16_t kEstAttackStarted = 1u << 4;
constexpr std::uint16_t kEstAttackCleared = 1u << 5;
constexpr std::uint16_t kEstSafeStop = 1u << 6;
constexpr std::uint16_t kEstMeasurementRejected = 1u << 7;
constexpr std::uint16_t kEstReserved = static_cast<std::uint16_t>(0xff00u);

constexpr std::uint8_t kChalSilent = 1u << 0;
constexpr std::uint8_t kChalUnderAttack = 1u << 1;
constexpr std::uint8_t kChalReserved =
    static_cast<std::uint8_t>(~(kChalSilent | kChalUnderAttack));

/// Appends canonical little-endian fields; finish() prepends the header.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v & 0xffu));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
    }
  }

  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Clamps to the same cap the decoder enforces, so a locally built frame
  /// with an oversized string is truncated here rather than encoded with a
  /// length prefix that disagrees with its contents (or rejected only by
  /// the remote decoder).
  void str(const std::string& s, std::size_t max_bytes) {
    const std::size_t n = std::min(s.size(), max_bytes);
    u16(static_cast<std::uint16_t>(n));
    bytes_.reserve(bytes_.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(s[i]));
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> finish(FrameType type) && {
    std::vector<std::uint8_t> frame;
    frame.reserve(kHeaderBytes + bytes_.size());
    const auto len = static_cast<std::uint32_t>(bytes_.size());
    for (int shift = 0; shift < 32; shift += 8) {
      frame.push_back(static_cast<std::uint8_t>((len >> shift) & 0xffu));
    }
    frame.push_back(static_cast<std::uint8_t>(type));
    frame.insert(frame.end(), bytes_.begin(), bytes_.end());
    return frame;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reads over one payload; every accessor
/// returns false instead of reading past the end.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  bool u8(std::uint8_t& out) {
    if (size_ - pos_ < 1) return false;
    out = data_[pos_++];
    return true;
  }

  bool u16(std::uint16_t& out) {
    if (size_ - pos_ < 2) return false;
    out = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(data_[pos_]) |
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_ + 1])
                                   << 8));
    pos_ += 2;
    return true;
  }

  bool u64(std::uint64_t& out) {
    if (size_ - pos_ < 8) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    out = v;
    return true;
  }

  bool i64(std::int64_t& out) {
    std::uint64_t v = 0;
    if (!u64(v)) return false;
    out = static_cast<std::int64_t>(v);
    return true;
  }

  bool f64(double& out) {
    std::uint64_t v = 0;
    if (!u64(v)) return false;
    out = std::bit_cast<double>(v);
    return true;
  }

  bool str(std::string& out, std::size_t max_bytes) {
    std::uint16_t len = 0;
    if (!u16(len)) return false;
    if (len > max_bytes || size_ - pos_ < len) return false;
    out.assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  /// True when the payload was consumed exactly (canonical form).
  [[nodiscard]] bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

bool reject(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

// --- encoding --------------------------------------------------------------

std::vector<std::uint8_t> encode(const HelloFrame& hello) {
  PayloadWriter w;
  w.u16(hello.protocol_version);
  w.u64(hello.scenario_seed);
  w.i64(hello.horizon_steps);
  w.u8(static_cast<std::uint8_t>(hello.leader));
  w.u8(static_cast<std::uint8_t>(hello.attack));
  w.u8(static_cast<std::uint8_t>(hello.estimator));
  w.u8(hello.hardened ? 1 : 0);
  w.f64(hello.attack_start_s.value());
  w.f64(hello.attack_end_s.value());
  w.str(hello.client_id, kMaxClientIdBytes);
  w.str(hello.fault_spec, kMaxFaultSpecBytes);
  // v3 appends the detector spec; a frame declaring v1/v2 keeps the old
  // layout so downgraded HELLOs stay decodable by old servers.
  if (hello.protocol_version >= 3) {
    w.str(hello.detector_spec, kMaxDetectorSpecBytes);
  }
  return std::move(w).finish(FrameType::kHello);
}

std::vector<std::uint8_t> encode(const MeasurementFrame& m) {
  PayloadWriter w;
  w.i64(m.step);
  w.f64(m.measurement.estimate.distance_m.value());
  w.f64(m.measurement.estimate.range_rate_mps.value());
  w.f64(m.measurement.beats.up_hz.value());
  w.f64(m.measurement.beats.down_hz.value());
  w.f64(m.measurement.rx_power_w);
  w.f64(m.measurement.peak_to_average);
  std::uint8_t flags = 0;
  if (m.measurement.coherent_echo) flags |= kMeasCoherentEcho;
  if (m.measurement.power_alarm) flags |= kMeasPowerAlarm;
  w.u8(flags);
  return std::move(w).finish(FrameType::kMeasurement);
}

std::vector<std::uint8_t> encode(const EstimateFrame& e) {
  PayloadWriter w;
  w.i64(e.step);
  w.f64(e.safe.distance_m.value());
  w.f64(e.safe.relative_velocity_mps.value());
  std::uint16_t flags = 0;
  if (e.safe.target_present) flags |= kEstTargetPresent;
  if (e.safe.estimated) flags |= kEstEstimated;
  if (e.safe.under_attack) flags |= kEstUnderAttack;
  if (e.safe.challenge_slot) flags |= kEstChallengeSlot;
  if (e.safe.attack_started) flags |= kEstAttackStarted;
  if (e.safe.attack_cleared) flags |= kEstAttackCleared;
  if (e.safe.safe_stop) flags |= kEstSafeStop;
  if (e.safe.measurement_rejected) flags |= kEstMeasurementRejected;
  w.u16(flags);
  w.u8(static_cast<std::uint8_t>(e.safe.degradation));
  w.u64(static_cast<std::uint64_t>(e.safe.holdover_steps));
  return std::move(w).finish(FrameType::kEstimate);
}

std::vector<std::uint8_t> encode(const ChallengeResultFrame& c) {
  PayloadWriter w;
  w.i64(c.step);
  std::uint8_t flags = 0;
  if (c.silent) flags |= kChalSilent;
  if (c.under_attack) flags |= kChalUnderAttack;
  w.u8(flags);
  return std::move(w).finish(FrameType::kChallengeResult);
}

std::vector<std::uint8_t> encode(const StatusFrame& s) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(s.code));
  w.u64(s.session_token);
  w.str(s.message, kMaxMessageBytes);
  return std::move(w).finish(FrameType::kStatus);
}

std::vector<std::uint8_t> encode(const ErrorFrame& e) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(e.code));
  w.str(e.message, kMaxMessageBytes);
  return std::move(w).finish(FrameType::kError);
}

std::vector<std::uint8_t> encode(const ResumeFrame& r) {
  PayloadWriter w;
  w.u64(r.session_token);
  w.i64(r.last_step);
  return std::move(w).finish(FrameType::kResume);
}

std::vector<std::uint8_t> encode(const ResumeOkFrame& r) {
  PayloadWriter w;
  w.u64(r.session_token);
  w.i64(r.next_step);
  w.u64(r.replayed_frames);
  return std::move(w).finish(FrameType::kResumeOk);
}

std::vector<std::uint8_t> encode(const AckFrame& a) {
  PayloadWriter w;
  w.i64(a.last_step);
  return std::move(w).finish(FrameType::kAck);
}

// --- decoding --------------------------------------------------------------

bool decode(const Frame& frame, HelloFrame& out, std::string* error) {
  if (frame.type != FrameType::kHello) {
    return reject(error, "frame is not HELLO");
  }
  PayloadReader r(frame.payload);
  std::uint8_t leader = 0;
  std::uint8_t attack = 0;
  std::uint8_t estimator = 0;
  std::uint8_t hardened = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  if (!r.u16(out.protocol_version) || !r.u64(out.scenario_seed) ||
      !r.i64(out.horizon_steps) || !r.u8(leader) || !r.u8(attack) ||
      !r.u8(estimator) || !r.u8(hardened) || !r.f64(start_s) ||
      !r.f64(end_s) || !r.str(out.client_id, kMaxClientIdBytes) ||
      !r.str(out.fault_spec, kMaxFaultSpecBytes)) {
    return reject(error, "HELLO payload truncated or string too long");
  }
  out.detector_spec.clear();
  if (out.protocol_version >= 3 &&
      !r.str(out.detector_spec, kMaxDetectorSpecBytes)) {
    return reject(error, "HELLO payload truncated or string too long");
  }
  if (!r.done()) return reject(error, "HELLO payload has trailing bytes");
  if (leader > 1) return reject(error, "HELLO leader scenario out of range");
  if (attack > 2) return reject(error, "HELLO attack kind out of range");
  if (estimator > 1) return reject(error, "HELLO estimator out of range");
  if (hardened > 1) return reject(error, "HELLO hardened flag out of range");
  out.leader = static_cast<core::LeaderScenario>(leader);
  out.attack = static_cast<core::AttackKind>(attack);
  out.estimator = static_cast<radar::BeatEstimator>(estimator);
  out.hardened = hardened != 0;
  out.attack_start_s = units::Seconds{start_s};
  out.attack_end_s = units::Seconds{end_s};
  return true;
}

bool decode(const Frame& frame, MeasurementFrame& out, std::string* error) {
  if (frame.type != FrameType::kMeasurement) {
    return reject(error, "frame is not MEASUREMENT");
  }
  PayloadReader r(frame.payload);
  double distance = 0.0;
  double range_rate = 0.0;
  double up_hz = 0.0;
  double down_hz = 0.0;
  std::uint8_t flags = 0;
  if (!r.i64(out.step) || !r.f64(distance) || !r.f64(range_rate) ||
      !r.f64(up_hz) || !r.f64(down_hz) || !r.f64(out.measurement.rx_power_w) ||
      !r.f64(out.measurement.peak_to_average) || !r.u8(flags)) {
    return reject(error, "MEASUREMENT payload truncated");
  }
  if (!r.done()) {
    return reject(error, "MEASUREMENT payload has trailing bytes");
  }
  if ((flags & kMeasReserved) != 0) {
    return reject(error, "MEASUREMENT reserved flag bits set");
  }
  out.measurement.estimate.distance_m = units::Meters{distance};
  out.measurement.estimate.range_rate_mps = units::MetersPerSecond{range_rate};
  out.measurement.beats.up_hz = units::Hertz{up_hz};
  out.measurement.beats.down_hz = units::Hertz{down_hz};
  out.measurement.coherent_echo = (flags & kMeasCoherentEcho) != 0;
  out.measurement.power_alarm = (flags & kMeasPowerAlarm) != 0;
  return true;
}

bool decode(const Frame& frame, EstimateFrame& out, std::string* error) {
  if (frame.type != FrameType::kEstimate) {
    return reject(error, "frame is not ESTIMATE");
  }
  PayloadReader r(frame.payload);
  double distance = 0.0;
  double velocity = 0.0;
  std::uint16_t flags = 0;
  std::uint8_t degradation = 0;
  std::uint64_t holdover = 0;
  if (!r.i64(out.step) || !r.f64(distance) || !r.f64(velocity) ||
      !r.u16(flags) || !r.u8(degradation) || !r.u64(holdover)) {
    return reject(error, "ESTIMATE payload truncated");
  }
  if (!r.done()) return reject(error, "ESTIMATE payload has trailing bytes");
  if ((flags & kEstReserved) != 0) {
    return reject(error, "ESTIMATE reserved flag bits set");
  }
  if (degradation > 3) {
    return reject(error, "ESTIMATE degradation state out of range");
  }
  out.safe.distance_m = units::Meters{distance};
  out.safe.relative_velocity_mps = units::MetersPerSecond{velocity};
  out.safe.target_present = (flags & kEstTargetPresent) != 0;
  out.safe.estimated = (flags & kEstEstimated) != 0;
  out.safe.under_attack = (flags & kEstUnderAttack) != 0;
  out.safe.challenge_slot = (flags & kEstChallengeSlot) != 0;
  out.safe.attack_started = (flags & kEstAttackStarted) != 0;
  out.safe.attack_cleared = (flags & kEstAttackCleared) != 0;
  out.safe.safe_stop = (flags & kEstSafeStop) != 0;
  out.safe.measurement_rejected = (flags & kEstMeasurementRejected) != 0;
  out.safe.degradation = static_cast<core::DegradationState>(degradation);
  out.safe.holdover_steps = static_cast<std::size_t>(holdover);
  return true;
}

bool decode(const Frame& frame, ChallengeResultFrame& out, std::string* error) {
  if (frame.type != FrameType::kChallengeResult) {
    return reject(error, "frame is not CHALLENGE_RESULT");
  }
  PayloadReader r(frame.payload);
  std::uint8_t flags = 0;
  if (!r.i64(out.step) || !r.u8(flags)) {
    return reject(error, "CHALLENGE_RESULT payload truncated");
  }
  if (!r.done()) {
    return reject(error, "CHALLENGE_RESULT payload has trailing bytes");
  }
  if ((flags & kChalReserved) != 0) {
    return reject(error, "CHALLENGE_RESULT reserved flag bits set");
  }
  out.silent = (flags & kChalSilent) != 0;
  out.under_attack = (flags & kChalUnderAttack) != 0;
  return true;
}

bool decode(const Frame& frame, StatusFrame& out, std::string* error) {
  if (frame.type != FrameType::kStatus) {
    return reject(error, "frame is not STATUS");
  }
  PayloadReader r(frame.payload);
  std::uint8_t code = 0;
  if (!r.u8(code) || !r.u64(out.session_token) ||
      !r.str(out.message, kMaxMessageBytes)) {
    return reject(error, "STATUS payload truncated or message too long");
  }
  if (!r.done()) return reject(error, "STATUS payload has trailing bytes");
  if (code > 4) return reject(error, "STATUS code out of range");
  out.code = static_cast<StatusCode>(code);
  return true;
}

bool decode(const Frame& frame, ErrorFrame& out, std::string* error) {
  if (frame.type != FrameType::kError) {
    return reject(error, "frame is not ERROR");
  }
  PayloadReader r(frame.payload);
  std::uint8_t code = 0;
  if (!r.u8(code) || !r.str(out.message, kMaxMessageBytes)) {
    return reject(error, "ERROR payload truncated or message too long");
  }
  if (!r.done()) return reject(error, "ERROR payload has trailing bytes");
  if (code < 1 || code > 8) return reject(error, "ERROR code out of range");
  out.code = static_cast<ErrorCode>(code);
  return true;
}

bool decode(const Frame& frame, ResumeFrame& out, std::string* error) {
  if (frame.type != FrameType::kResume) {
    return reject(error, "frame is not RESUME");
  }
  PayloadReader r(frame.payload);
  if (!r.u64(out.session_token) || !r.i64(out.last_step)) {
    return reject(error, "RESUME payload truncated");
  }
  if (!r.done()) return reject(error, "RESUME payload has trailing bytes");
  if (out.last_step < -1) {
    return reject(error, "RESUME last_step out of range");
  }
  return true;
}

bool decode(const Frame& frame, ResumeOkFrame& out, std::string* error) {
  if (frame.type != FrameType::kResumeOk) {
    return reject(error, "frame is not RESUME_OK");
  }
  PayloadReader r(frame.payload);
  if (!r.u64(out.session_token) || !r.i64(out.next_step) ||
      !r.u64(out.replayed_frames)) {
    return reject(error, "RESUME_OK payload truncated");
  }
  if (!r.done()) return reject(error, "RESUME_OK payload has trailing bytes");
  if (out.next_step < 0) {
    return reject(error, "RESUME_OK next_step out of range");
  }
  return true;
}

bool decode(const Frame& frame, AckFrame& out, std::string* error) {
  if (frame.type != FrameType::kAck) {
    return reject(error, "frame is not ACK");
  }
  PayloadReader r(frame.payload);
  if (!r.i64(out.last_step)) {
    return reject(error, "ACK payload truncated");
  }
  if (!r.done()) return reject(error, "ACK payload has trailing bytes");
  if (out.last_step < -1) return reject(error, "ACK last_step out of range");
  return true;
}

// --- FrameDecoder ----------------------------------------------------------

void FrameDecoder::feed(const void* data, std::size_t size) {
  if (failed_ || size == 0) return;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void FrameDecoder::fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
  buffer_.clear();
  consumed_ = 0;
}

std::optional<Frame> FrameDecoder::next() {
  if (failed_) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return std::nullopt;

  const std::uint8_t* head = buffer_.data() + consumed_;
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
  }
  // Validate the header before waiting for (or buffering) the payload, so a
  // hostile length prefix can never drive allocation.
  if (payload_len > max_payload_) {
    fail("oversized frame: " + std::to_string(payload_len) +
         " bytes exceeds max payload " + std::to_string(max_payload_));
    return std::nullopt;
  }
  const std::uint8_t type_byte = head[4];
  if (type_byte < static_cast<std::uint8_t>(FrameType::kHello) ||
      type_byte > static_cast<std::uint8_t>(FrameType::kAck)) {
    fail("unknown frame type " + std::to_string(type_byte));
    return std::nullopt;
  }
  if (available < kHeaderBytes + payload_len) return std::nullopt;

  Frame frame;
  frame.type = static_cast<FrameType>(type_byte);
  frame.payload.assign(head + kHeaderBytes,
                       head + kHeaderBytes + payload_len);
  consumed_ += kHeaderBytes + payload_len;
  // Compact once the dead prefix dominates, keeping amortized O(1) feeds.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return frame;
}

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kMeasurement: return "MEASUREMENT";
    case FrameType::kChallengeResult: return "CHALLENGE_RESULT";
    case FrameType::kEstimate: return "ESTIMATE";
    case FrameType::kStatus: return "STATUS";
    case FrameType::kError: return "ERROR";
    case FrameType::kResume: return "RESUME";
    case FrameType::kResumeOk: return "RESUME_OK";
    case FrameType::kAck: return "ACK";
  }
  return "?";
}

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kHelloOk: return "hello-ok";
    case StatusCode::kDraining: return "draining";
    case StatusCode::kSlowConsumer: return "slow-consumer";
    case StatusCode::kIdleTimeout: return "idle-timeout";
    case StatusCode::kOverloaded: return "overloaded";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kUnsupportedVersion: return "unsupported-version";
    case ErrorCode::kSessionLimit: return "session-limit";
    case ErrorCode::kProtocolOrder: return "protocol-order";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kResumeUnknown: return "resume-unknown";
    case ErrorCode::kResumeGap: return "resume-gap";
    case ErrorCode::kUnknownDetector: return "unknown-detector";
  }
  return "?";
}

}  // namespace safe::serve
