// Binary wire protocol for the safe-sensing streaming service (DESIGN.md
// §12).
//
// Framing: every frame is a 5-byte header — u32 payload length then u8 frame
// type, both little-endian — followed by the payload. All integers are
// canonical little-endian; doubles travel as their IEEE-754 bit pattern in a
// little-endian u64, so a measurement survives the round trip bit-exactly
// (the serving parity contract: per-session ESTIMATE output must be
// byte-identical to an offline core::pipeline run of the same trace).
//
// The decoder is strict: an oversized length prefix, an unknown frame type,
// a payload that parses short or leaves trailing bytes, out-of-range enum
// values, and reserved flag bits all put it into a sticky failed state
// instead of guessing. Truncated input is not an error — the decoder simply
// waits for more bytes, so frames may be split arbitrarily across reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/scenario.hpp"
#include "radar/processor.hpp"
#include "units/units.hpp"

namespace safe::serve {

/// Bumped on any incompatible framing or payload change. A HELLO carrying a
/// newer version than the server speaks is rejected with
/// ErrorCode::kUnsupportedVersion; older versions stay accepted (a v3 server
/// decodes v1/v2 HELLOs and treats the missing fields as defaults).
/// v2 adds session resumption (RESUME / RESUME_OK / ACK frames), the
/// kOverloaded status, and the resume error codes.
/// v3 appends `detector_spec` to HELLO (per-session detection backend) and
/// the kUnknownDetector error code.
inline constexpr std::uint16_t kProtocolVersion = 3;

/// Header: u32 payload length + u8 frame type.
inline constexpr std::size_t kHeaderBytes = 5;

/// Hard ceiling on a single payload. Every v1 frame fits comfortably; a
/// length prefix beyond this is rejected before any buffering, so a hostile
/// 4 GiB prefix cannot make the decoder allocate.
inline constexpr std::size_t kMaxPayloadBytes = 4096;

enum class FrameType : std::uint8_t {
  kHello = 1,            ///< client -> server: open a session
  kMeasurement = 2,      ///< client -> server: one radar epoch
  kChallengeResult = 3,  ///< server -> client: challenge-slot outcome
  kEstimate = 4,         ///< server -> client: safe measurement for a step
  kStatus = 5,           ///< server -> client: session/connection status
  kError = 6,            ///< server -> client: protocol error (fatal)
  kResume = 7,           ///< client -> server: re-attach a detached session
  kResumeOk = 8,         ///< server -> client: resume accepted; replay follows
  kAck = 9,              ///< client -> server: estimates received through step
};

enum class StatusCode : std::uint8_t {
  kHelloOk = 0,       ///< session opened; token carries the session id
  kDraining = 1,      ///< server is shutting down gracefully
  kSlowConsumer = 2,  ///< outbound queue overflowed; connection closes
  kIdleTimeout = 3,   ///< session evicted for inactivity
  kOverloaded = 4,    ///< load shed; retry after backoff (session resumable)
};

enum class ErrorCode : std::uint8_t {
  kMalformedFrame = 1,      ///< decoder entered the failed state
  kUnsupportedVersion = 2,  ///< HELLO version != kProtocolVersion
  kSessionLimit = 3,        ///< session cap reached; HELLO rejected
  kProtocolOrder = 4,       ///< MEASUREMENT before HELLO, duplicate HELLO...
  kInternal = 5,            ///< server-side failure (message says what)
  kResumeUnknown = 6,       ///< RESUME token unknown, expired, or finished
  kResumeGap = 7,           ///< replay window lost frames the client needs
  kUnknownDetector = 8,     ///< HELLO detector_spec names no known backend
};

/// Session handshake. Everything the server needs to rebuild the exact
/// pipeline the client will compare against offline: the scenario that
/// produced the measurement trace and the pipeline profile that consumes it.
struct HelloFrame {
  std::uint16_t protocol_version = kProtocolVersion;
  std::uint64_t scenario_seed = 1;
  std::int64_t horizon_steps = 300;
  core::LeaderScenario leader = core::LeaderScenario::kConstantDecel;
  core::AttackKind attack = core::AttackKind::kNone;
  radar::BeatEstimator estimator = radar::BeatEstimator::kPeriodogram;
  bool hardened = false;  ///< hardened_pipeline_options() vs paper defaults
  units::Seconds attack_start_s{182.0};
  units::Seconds attack_end_s{300.0};
  std::string client_id;   ///< informational; <= kMaxClientIdBytes
  std::string fault_spec;  ///< fault mini-language; <= kMaxFaultSpecBytes
  /// Detection backend mini-language (v3+; <= kMaxDetectorSpecBytes). Empty
  /// selects the paper's CRA detector. Absent from v1/v2 HELLOs, which
  /// decode with it empty.
  std::string detector_spec;
};

inline constexpr std::size_t kMaxClientIdBytes = 128;
inline constexpr std::size_t kMaxFaultSpecBytes = 1024;
inline constexpr std::size_t kMaxDetectorSpecBytes = 256;

/// Cap on the human-readable message in STATUS and ERROR frames.
inline constexpr std::size_t kMaxMessageBytes = 512;

/// One radar epoch, lossless: every field the pipeline or health monitor
/// reads crosses the wire bit-exactly.
struct MeasurementFrame {
  std::int64_t step = 0;
  radar::RadarMeasurement measurement{};
};

/// The pipeline's SafeMeasurement for one step.
struct EstimateFrame {
  std::int64_t step = 0;
  core::SafeMeasurement safe{};
};

/// Outcome of a challenge slot (emitted alongside the ESTIMATE).
struct ChallengeResultFrame {
  std::int64_t step = 0;
  bool silent = false;        ///< receiver output was zero, as expected
  bool under_attack = false;  ///< detector state after the slot
};

struct StatusFrame {
  StatusCode code = StatusCode::kHelloOk;
  std::uint64_t session_token = 0;
  std::string message;
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kMalformedFrame;
  std::string message;
};

/// Re-attach a detached session after a disconnect. `last_step` is the
/// highest ESTIMATE step the client has received (-1 = none yet); the server
/// replays every retained frame after it, then the client streams
/// measurements from the step the RESUME_OK names.
struct ResumeFrame {
  std::uint64_t session_token = 0;
  std::int64_t last_step = -1;
};

/// Resume accepted: replayed frames (if any) follow immediately, after which
/// the client must send measurements starting at `next_step`.
struct ResumeOkFrame {
  std::uint64_t session_token = 0;
  std::int64_t next_step = 0;         ///< first measurement step expected next
  std::uint64_t replayed_frames = 0;  ///< frames replayed after this one
};

/// Client acknowledgement: every ESTIMATE through `last_step` has been
/// received, so the server may trim its replay buffer up to that step.
struct AckFrame {
  std::int64_t last_step = -1;
};

// --- encoding --------------------------------------------------------------

/// Each encoder returns the complete frame (header + payload). String
/// fields are clamped at encode time to the same caps the decoders enforce
/// (kMaxClientIdBytes / kMaxFaultSpecBytes / kMaxMessageBytes),
/// so an encoded frame always round-trips through decode.
[[nodiscard]] std::vector<std::uint8_t> encode(const HelloFrame& hello);
[[nodiscard]] std::vector<std::uint8_t> encode(const MeasurementFrame& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const EstimateFrame& e);
[[nodiscard]] std::vector<std::uint8_t> encode(const ChallengeResultFrame& c);
[[nodiscard]] std::vector<std::uint8_t> encode(const StatusFrame& s);
[[nodiscard]] std::vector<std::uint8_t> encode(const ErrorFrame& e);
[[nodiscard]] std::vector<std::uint8_t> encode(const ResumeFrame& r);
[[nodiscard]] std::vector<std::uint8_t> encode(const ResumeOkFrame& r);
[[nodiscard]] std::vector<std::uint8_t> encode(const AckFrame& a);

// --- decoding --------------------------------------------------------------

/// A complete frame lifted off the byte stream (payload not yet parsed).
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// Parses a frame's payload into the typed struct. Returns false (and sets
/// `error` when non-null) on short payloads, trailing bytes, out-of-range
/// enums, reserved flag bits, or oversized strings. A false return never
/// reads outside the payload.
bool decode(const Frame& frame, HelloFrame& out, std::string* error = nullptr);
bool decode(const Frame& frame, MeasurementFrame& out,
            std::string* error = nullptr);
bool decode(const Frame& frame, EstimateFrame& out,
            std::string* error = nullptr);
bool decode(const Frame& frame, ChallengeResultFrame& out,
            std::string* error = nullptr);
bool decode(const Frame& frame, StatusFrame& out,
            std::string* error = nullptr);
bool decode(const Frame& frame, ErrorFrame& out, std::string* error = nullptr);
bool decode(const Frame& frame, ResumeFrame& out,
            std::string* error = nullptr);
bool decode(const Frame& frame, ResumeOkFrame& out,
            std::string* error = nullptr);
bool decode(const Frame& frame, AckFrame& out, std::string* error = nullptr);

/// Incremental frame lifter. feed() arbitrary byte chunks, then call next()
/// until it returns nullopt (more bytes needed). Framing violations (length
/// prefix > max payload, unknown frame type) put the decoder into a sticky
/// failed state; the connection must be torn down. The decoder never reads
/// outside the bytes it was fed and never buffers more than
/// kHeaderBytes + max payload per pending frame.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload_bytes = kMaxPayloadBytes)
      : max_payload_(max_payload_bytes) {}

  void feed(const void* data, std::size_t size);

  /// Next complete frame, or nullopt when more bytes are needed or the
  /// decoder has failed.
  std::optional<Frame> next();

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  void fail(std::string message);

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::size_t max_payload_;
  bool failed_ = false;
  std::string error_;
};

[[nodiscard]] const char* to_string(FrameType type);
[[nodiscard]] const char* to_string(StatusCode code);
[[nodiscard]] const char* to_string(ErrorCode code);

}  // namespace safe::serve
