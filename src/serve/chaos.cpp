#include "serve/chaos.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/net_util.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::serve {

namespace {

/// Per-direction buffering cap: past this the proxy stops reading the
/// source socket, so a slow destination backpressures the source naturally.
constexpr std::size_t kMaxBufferedBytes = 256 * 1024;

constexpr std::size_t kReadChunk = 16 * 1024;

[[noreturn]] void bad_token(const std::string& directive,
                            const std::string& token) {
  throw std::invalid_argument("chaos spec: bad token '" + token +
                              "' in directive '" + directive + "'");
}

std::uint64_t parse_u64(const std::string& directive,
                        const std::string& token, const std::string& value) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(value, &pos);
    if (pos != value.size()) bad_token(directive, token);
    return static_cast<std::uint64_t>(v);
  } catch (const std::invalid_argument&) {
    bad_token(directive, token);
  } catch (const std::out_of_range&) {
    bad_token(directive, token);
  }
}

double parse_prob(const std::string& directive, const std::string& token,
                  const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size() || v < 0.0 || v > 1.0) {
      bad_token(directive, token);
    }
    return v;
  } catch (const std::invalid_argument&) {
    bad_token(directive, token);
  } catch (const std::out_of_range&) {
    bad_token(directive, token);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

ChaosSpec parse_chaos_spec(const std::string& spec) {
  ChaosSpec out;
  if (spec.empty() || spec == "none") return out;

  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find_first_of(";+", begin);
    if (end == std::string::npos) end = spec.size();
    const std::string directive = spec.substr(begin, end - begin);
    begin = end + 1;
    if (directive.empty()) continue;

    const std::size_t colon = directive.find(':');
    const std::string name = directive.substr(0, colon);
    std::vector<std::pair<std::string, std::string>> kv;
    if (colon != std::string::npos) {
      std::size_t p = colon + 1;
      while (p <= directive.size()) {
        std::size_t q = directive.find(',', p);
        if (q == std::string::npos) q = directive.size();
        const std::string token = directive.substr(p, q - p);
        p = q + 1;
        if (token.empty()) continue;
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) bad_token(directive, token);
        kv.emplace_back(token.substr(0, eq), token.substr(eq + 1));
      }
    }

    const auto only = [&](std::initializer_list<const char*> allowed) {
      // A directive without arguments is always a mistake — accepting it
      // would let a typo'd spec silently degrade to passthrough.
      if (kv.empty()) bad_token(directive, "(no arguments)");
      for (const auto& [key, value] : kv) {
        bool ok = false;
        for (const char* a : allowed) ok = ok || key == a;
        if (!ok) bad_token(directive, key + "=" + value);
      }
    };

    if (name == "latency") {
      only({"ms", "jitter"});
      for (const auto& [key, value] : kv) {
        const std::uint64_t ms = parse_u64(directive, key + "=" + value, value);
        if (key == "ms") out.latency_ns = ms * 1'000'000ULL;
        if (key == "jitter") out.jitter_ns = ms * 1'000'000ULL;
      }
    } else if (name == "throttle") {
      only({"bps"});
      for (const auto& [key, value] : kv) {
        out.throttle_bytes_per_sec =
            parse_u64(directive, key + "=" + value, value);
      }
      if (out.throttle_bytes_per_sec == 0) bad_token(directive, "bps=0");
    } else if (name == "split") {
      only({"min", "max"});
      for (const auto& [key, value] : kv) {
        const std::uint64_t v = parse_u64(directive, key + "=" + value, value);
        if (key == "min") out.split_min = static_cast<std::size_t>(v);
        if (key == "max") out.split_max = static_cast<std::size_t>(v);
      }
      const bool max_given = out.split_max != 0;
      if (out.split_min == 0) out.split_min = 1;
      if (!max_given) {
        out.split_max = out.split_min;  // exact chunk size
      } else if (out.split_max < out.split_min) {
        bad_token(directive, "max < min");
      }
    } else if (name == "corrupt") {
      only({"prob"});
      for (const auto& [key, value] : kv) {
        out.corrupt_prob = parse_prob(directive, key + "=" + value, value);
      }
    } else if (name == "disconnect") {
      only({"prob", "after"});
      for (const auto& [key, value] : kv) {
        if (key == "prob") {
          out.disconnect_prob = parse_prob(directive, key + "=" + value, value);
        } else {
          out.disconnect_after_bytes =
              parse_u64(directive, key + "=" + value, value);
        }
      }
    } else if (name == "halfclose") {
      only({"after"});
      for (const auto& [key, value] : kv) {
        out.half_close_after_bytes =
            parse_u64(directive, key + "=" + value, value);
      }
      if (out.half_close_after_bytes == 0) bad_token(directive, "after=0");
    } else {
      throw std::invalid_argument("chaos spec: unknown directive '" + name +
                                  "'");
    }
  }
  return out;
}

std::string chaos_spec_help() {
  return "latency:ms=N[,jitter=N] | throttle:bps=N | split:min=N,max=N | "
         "corrupt:prob=P | disconnect:prob=P[,after=N] | halfclose:after=N "
         "(';'-separated; empty or 'none' = passthrough)";
}

// --- ChaosPlan --------------------------------------------------------------

std::size_t ChaosPlan::next_chunk_len(std::size_t available) {
  if (available == 0) return 0;
  if (spec_.split_min == 0) return available;
  const std::size_t lo = std::max<std::size_t>(
      1, std::min(spec_.split_min, available));
  const std::size_t hi = std::max(lo, std::min(spec_.split_max, available));
  return lo + static_cast<std::size_t>(rng_() % (hi - lo + 1));
}

std::uint64_t ChaosPlan::next_delay_ns() {
  std::uint64_t delay = spec_.latency_ns;
  if (spec_.jitter_ns != 0) {
    delay += static_cast<std::uint64_t>(
        runtime::uniform_double(rng_) *
        static_cast<double>(spec_.jitter_ns));
  }
  return delay;
}

std::size_t ChaosPlan::corrupt(std::uint8_t* data, std::size_t size) {
  if (spec_.corrupt_prob <= 0.0) return 0;
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (runtime::uniform_double(rng_) < spec_.corrupt_prob) {
      data[i] ^= static_cast<std::uint8_t>(1U << (rng_() % 8));
      ++corrupted;
    }
  }
  return corrupted;
}

bool ChaosPlan::should_disconnect(std::uint64_t total_forwarded_bytes) {
  if (spec_.disconnect_after_bytes != 0 &&
      total_forwarded_bytes >= spec_.disconnect_after_bytes) {
    return true;
  }
  if (spec_.disconnect_prob > 0.0 &&
      runtime::uniform_double(rng_) < spec_.disconnect_prob) {
    return true;
  }
  return false;
}

// --- ChaosProxy -------------------------------------------------------------

ChaosProxy::ChaosProxy(ChaosSpec spec, std::uint64_t seed,
                       std::string target_host, std::uint16_t target_port)
    : spec_(spec),
      seed_(seed),
      target_host_(std::move(target_host)),
      target_port_(target_port) {}

ChaosProxy::~ChaosProxy() {
  for (Link& link : links_) close_link(link);
  links_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void ChaosProxy::bind_and_listen(const std::string& host, std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("chaos: socket() failed: " +
                             errno_string(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("chaos: bad bind address: " + host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    throw std::runtime_error("chaos: bind/listen failed: " +
                             errno_string(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0,
                   wake_fds_) != 0) {
    throw std::runtime_error("chaos: socketpair failed: " +
                             errno_string(errno));
  }
}

void ChaosProxy::request_stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_fds_[1] >= 0) {
    const std::uint8_t byte = 1;
    (void)::send(wake_fds_[1], &byte, 1, MSG_NOSIGNAL);
  }
}

void ChaosProxy::accept_ready(std::uint64_t now) {
  while (true) {
    const int client_fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (client_fd < 0) return;
    set_tcp_nodelay(client_fd);

    const int server_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    bool ok = server_fd >= 0;
    if (ok) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(target_port_);
      ok = ::inet_pton(AF_INET, target_host_.c_str(), &addr.sin_addr) == 1 &&
           ::connect(server_fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) == 0;
    }
    if (!ok) {
      if (server_fd >= 0) ::close(server_fd);
      ::close(client_fd);
      const runtime::MutexLock lock(stats_mutex_);
      ++stats_.connect_failures;
      continue;
    }
    set_tcp_nodelay(server_fd);
    set_nonblocking(server_fd);

    Link link{client_fd,
              server_fd,
              ChaosPlan(spec_, seed_, next_connection_index_++),
              Pipe{},
              Pipe{},
              0,
              false};
    link.c2s.last_refill_ns = now;
    link.s2c.last_refill_ns = now;
    links_.push_back(std::move(link));
    const runtime::MutexLock lock(stats_mutex_);
    ++stats_.accepted;
  }
}

void ChaosProxy::close_link(Link& link) {
  if (link.client_fd >= 0) ::close(link.client_fd);
  if (link.server_fd >= 0) ::close(link.server_fd);
  if (link.client_fd >= 0 || link.server_fd >= 0) {
    const runtime::MutexLock lock(stats_mutex_);
    ++stats_.closed;
  }
  link.client_fd = -1;
  link.server_fd = -1;
}

bool ChaosProxy::flush_pipe(Link& link, Pipe& pipe, int dst_fd,
                            bool client_to_server, std::uint64_t now) {
  // Refill the throttle bucket.
  if (spec_.throttle_bytes_per_sec != 0) {
    const double rate = static_cast<double>(spec_.throttle_bytes_per_sec);
    const double burst = std::max(rate / 10.0, 4096.0);
    pipe.tokens += rate *
                   (static_cast<double>(now - pipe.last_refill_ns) * 1e-9);
    pipe.tokens = std::min(pipe.tokens, burst);
    pipe.last_refill_ns = now;
  }

  while (!pipe.chunks.empty() && !pipe.shut) {
    Chunk& front = pipe.chunks.front();
    if (front.release_ns > now) break;
    std::size_t want =
        link.plan.next_chunk_len(front.bytes.size() - front.offset);
    bool resplit = want < front.bytes.size() - front.offset;
    if (spec_.throttle_bytes_per_sec != 0) {
      if (pipe.tokens < 1.0) break;
      if (static_cast<double>(want) > pipe.tokens) {
        want = static_cast<std::size_t>(pipe.tokens);
        resplit = true;
      }
    }
    if (want == 0) break;

    const std::size_t corrupted =
        link.plan.corrupt(front.bytes.data() + front.offset, want);
    const ssize_t n =
        ::send(dst_fd, front.bytes.data() + front.offset, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // destination is gone
    }
    front.offset += static_cast<std::size_t>(n);
    pipe.buffered -= static_cast<std::size_t>(n);
    pipe.forwarded += static_cast<std::uint64_t>(n);
    link.total_forwarded += static_cast<std::uint64_t>(n);
    if (spec_.throttle_bytes_per_sec != 0) {
      pipe.tokens -= static_cast<double>(n);
    }
    {
      const runtime::MutexLock lock(stats_mutex_);
      stats_.bytes_forwarded += static_cast<std::uint64_t>(n);
      stats_.corrupted_bytes += corrupted;
      if (resplit) ++stats_.resplit_writes;
    }
    if (front.offset == front.bytes.size()) pipe.chunks.pop_front();

    if (link.plan.should_disconnect(link.total_forwarded)) {
      const runtime::MutexLock lock(stats_mutex_);
      ++stats_.disconnects_injected;
      return false;
    }
    if (client_to_server && !link.half_closed &&
        link.plan.should_half_close(pipe.forwarded)) {
      link.half_closed = true;
      pipe.shut = true;
      pipe.chunks.clear();
      pipe.buffered = 0;
      ::shutdown(dst_fd, SHUT_WR);
      const runtime::MutexLock lock(stats_mutex_);
      ++stats_.half_closes_injected;
      break;
    }
  }

  // Source finished and everything flushed: propagate the EOF.
  if (pipe.src_eof && pipe.chunks.empty() && !pipe.shut) {
    pipe.shut = true;
    ::shutdown(dst_fd, SHUT_WR);
  }
  return true;
}

void ChaosProxy::run() {
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t now = telemetry::now_ns();
    fds.clear();
    fds.push_back({.fd = wake_fds_[0], .events = POLLIN, .revents = 0});
    fds.push_back({.fd = listen_fd_, .events = POLLIN, .revents = 0});

    int timeout_ms = 50;
    for (const Link& link : links_) {
      for (const Pipe* pipe : {&link.c2s, &link.s2c}) {
        if (pipe->chunks.empty()) continue;
        const std::uint64_t release = pipe->chunks.front().release_ns;
        const std::uint64_t wait_ms =
            release > now ? (release - now) / 1'000'000ULL + 1 : 1;
        timeout_ms = std::min<int>(
            timeout_ms,
            static_cast<int>(std::min<std::uint64_t>(wait_ms, 50)));
      }
    }

    for (const Link& link : links_) {
      short client_events = 0;
      short server_events = 0;
      if (!link.c2s.src_eof && link.c2s.buffered < kMaxBufferedBytes) {
        client_events |= POLLIN;
      }
      if (!link.s2c.src_eof && link.s2c.buffered < kMaxBufferedBytes) {
        server_events |= POLLIN;
      }
      if (!link.s2c.chunks.empty() && !link.s2c.shut) client_events |= POLLOUT;
      if (!link.c2s.chunks.empty() && !link.c2s.shut) server_events |= POLLOUT;
      fds.push_back(
          {.fd = link.client_fd, .events = client_events, .revents = 0});
      fds.push_back(
          {.fd = link.server_fd, .events = server_events, .revents = 0});
    }

    if (::poll(fds.data(), fds.size(), timeout_ms) < 0 && errno != EINTR) {
      break;
    }
    const std::uint64_t after = telemetry::now_ns();

    if ((fds[0].revents & POLLIN) != 0) {
      std::uint8_t drain[64];
      while (::recv(wake_fds_[0], drain, sizeof(drain), 0) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) accept_ready(after);

    for (std::size_t i = 0; i < links_.size(); ++i) {
      Link& link = links_[i];
      const pollfd& client_p = fds[2 + 2 * i];
      const pollfd& server_p = fds[2 + 2 * i + 1];
      bool alive = true;

      const auto read_side = [&](int fd, const pollfd& p, Pipe& pipe) {
        if (!alive || (p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) return;
        while (pipe.buffered < kMaxBufferedBytes) {
          std::uint8_t buffer[kReadChunk];
          const ssize_t n = ::recv(fd, buffer, sizeof(buffer), MSG_DONTWAIT);
          if (n > 0) {
            Chunk chunk;
            chunk.bytes.assign(buffer, buffer + n);
            chunk.release_ns = after + link.plan.next_delay_ns();
            pipe.buffered += static_cast<std::size_t>(n);
            pipe.chunks.push_back(std::move(chunk));
            continue;
          }
          if (n == 0) {
            pipe.src_eof = true;
            return;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) return;
          alive = false;  // hard error: drop the link
          return;
        }
      };

      read_side(link.client_fd, client_p, link.c2s);
      read_side(link.server_fd, server_p, link.s2c);

      if (alive) {
        alive = flush_pipe(link, link.c2s, link.server_fd, true, after) &&
                flush_pipe(link, link.s2c, link.client_fd, false, after);
      }
      // Both directions delivered their EOF (or were cut): link done.
      if (alive && link.c2s.shut && link.s2c.shut) alive = false;
      if (!alive) close_link(link);
    }
    links_.erase(std::remove_if(links_.begin(), links_.end(),
                                [](const Link& l) {
                                  return l.client_fd < 0 && l.server_fd < 0;
                                }),
                 links_.end());
  }

  for (Link& link : links_) close_link(link);
  links_.clear();
}

ChaosProxy::Stats ChaosProxy::stats() const {
  const runtime::MutexLock lock(stats_mutex_);
  return stats_;
}

}  // namespace safe::serve
