// Shared socket plumbing for the serving layer (server, client, chaos
// proxy). The wire protocol is request/response at single-frame granularity,
// so Nagle's algorithm would add a full RTT of coalescing delay per frame;
// every stream socket in the serving path disables it.
#pragma once

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cstring>
#include <string>

namespace safe::serve {

namespace detail {
// strerror_r comes in two flavors: XSI returns int and fills the buffer,
// GNU returns a char* that may ignore the buffer. Overload resolution on
// the actual return type picks the right unpacking at compile time.
inline const char* strerror_result(int rc, const char* buf) noexcept {
  return rc == 0 ? buf : "unknown error";
}
inline const char* strerror_result(const char* s, const char*) noexcept {
  return s;
}
}  // namespace detail

/// Thread-safe strerror: error text for `err` without the shared static
/// buffer std::strerror uses (which clang-tidy's concurrency-mt-unsafe
/// rightly flags in a multithreaded server).
inline std::string errno_string(int err) {
  char buf[256] = {};
  return detail::strerror_result(::strerror_r(err, buf, sizeof(buf)), buf);
}

/// Disables Nagle on a connected TCP socket. Returns false when setsockopt
/// fails (e.g. not a TCP socket); callers treat that as non-fatal.
inline bool set_tcp_nodelay(int fd) noexcept {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

/// True when TCP_NODELAY is set on `fd` (loopback tests assert this on both
/// the client socket and server-accepted sockets).
inline bool tcp_nodelay_enabled(int fd) noexcept {
  int value = 0;
  socklen_t len = sizeof(value);
  if (::getsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &value, &len) != 0) {
    return false;
  }
  return value != 0;
}

}  // namespace safe::serve
