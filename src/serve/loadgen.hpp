// Concurrent load generator for the streaming session server.
//
// Replays deterministic scenario traces over N concurrent connections (one
// session per connection, seeds derived per session index) and reports
// throughput plus p50/p95/p99 frame latency. With verify enabled it also
// byte-compares every received ESTIMATE frame against the offline
// run_offline() reference — the serving parity check used by tests, the CI
// smoke job, and the throughput ablation.
//
// With retry_attempts > 0 each session runs through a ResilientClient
// instead of a bare SessionClient: disconnects and overload sheds are
// survived via RESUME + backoff, and the report carries the resilience
// counters (reconnects, resumes, restarts, replays). Failures are recorded
// under a structured taxonomy (SessionErrorKind) so a chaos soak can
// distinguish connect-refused from deadline-exceeded from verify-mismatch.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/resilient.hpp"
#include "serve/trace_source.hpp"

namespace safe::serve {

/// Structured failure classification for one load-generator session.
enum class SessionErrorKind : std::uint8_t {
  kConnectRefused = 0,   ///< TCP connect failed (every attempt)
  kHandshakeRejected,    ///< server answered HELLO/RESUME with a fatal ERROR
  kOverloaded,           ///< shed with STATUS kOverloaded and never admitted
  kDeadlineExceeded,     ///< per-session deadline expired
  kVerifyMismatch,       ///< estimate bytes differ from the offline reference
  kTransport,            ///< socket/decoder failure mid-stream
  kServerError,          ///< fatal mid-stream ERROR frame
  kServerStatus,         ///< non-retryable STATUS (e.g. draining)
  kIncompleteStream,     ///< stream ended short without a better reason
  kTraceGeneration,      ///< local scenario simulation threw
  kRetriesExhausted,     ///< retry budget spent before completion
};

inline constexpr std::size_t kSessionErrorKindCount = 11;

[[nodiscard]] const char* to_string(SessionErrorKind kind);

struct SessionError {
  std::size_t session = 0;
  SessionErrorKind kind = SessionErrorKind::kIncompleteStream;
  std::string detail;
};

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 8;  ///< concurrent client threads
  std::size_t sessions = 8;     ///< total sessions (>= connections)
  /// Base spec; session i runs it with seed
  /// derive_seed(master_seed, kScenario, i) so every session's trace is
  /// distinct yet reproducible.
  TraceSpec spec{};
  std::uint64_t master_seed = 1;
  bool verify = false;  ///< byte-compare estimates vs run_offline()
  std::uint64_t deadline_ns = 60'000'000'000ULL;  ///< per-session budget
  /// 0 = plain single-connection clients (legacy). > 0 = resilient clients
  /// with this many connection attempts per session; `retry` supplies the
  /// backoff shape (its jitter_seed is re-derived per session index).
  std::size_t retry_attempts = 0;
  RetryPolicy retry{};
};

struct LoadReport {
  std::size_t sessions_attempted = 0;
  std::size_t sessions_completed = 0;  ///< full estimate stream received
  std::size_t sessions_failed = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t estimates_received = 0;
  std::uint64_t challenges_received = 0;
  std::size_t sessions_verified = 0;  ///< byte-identical to offline reference
  std::uint64_t verify_mismatched_frames = 0;
  std::uint64_t elapsed_ns = 0;
  double throughput_frames_per_s = 0.0;
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p95_ns = 0;
  std::uint64_t latency_p99_ns = 0;
  std::uint64_t latency_max_ns = 0;

  // Resilience aggregates (all zero in legacy mode).
  std::uint64_t reconnects = 0;
  std::uint64_t resumes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t overload_backoffs = 0;
  std::uint64_t duplicates_discarded = 0;
  std::uint64_t replayed_frames = 0;

  /// Per-kind failure counts, indexed by SessionErrorKind.
  std::array<std::uint64_t, kSessionErrorKindCount> error_counts{};
  /// First few structured failures (per-session), for diagnostics.
  std::vector<SessionError> session_errors;
  /// Same failures as flat strings (legacy diagnostics surface).
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const {
    return sessions_failed == 0 && verify_mismatched_frames == 0 &&
           sessions_completed == sessions_attempted;
  }
};

/// Runs the load; blocking. Throws std::invalid_argument on nonsensical
/// options (zero sessions/connections, port 0).
[[nodiscard]] LoadReport run_load(const LoadOptions& options);

/// Machine-readable single-object JSON rendering of the report.
[[nodiscard]] std::string to_json(const LoadReport& report);

}  // namespace safe::serve
