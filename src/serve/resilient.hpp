// Retrying session client with resumption and exactly-once delivery
// accounting (DESIGN.md §13).
//
// ResilientClient wraps SessionClient in a reconnect state machine: on a
// disconnect or an explicit STATUS kOverloaded shed it backs off
// (exponential with SplitMix64 jitter), reconnects, and sends
// RESUME(token, last_step). The server replays retained frames after
// last_step; the client discards any estimate at or below the last step it
// already accepted, so every step is delivered exactly once no matter how
// many times the stream is cut. When a resume is rejected (kResumeUnknown /
// kResumeGap) the session restarts from scratch — a fresh pipeline is still
// byte-identical to the offline reference, so the parity contract holds
// either way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/trace_source.hpp"
#include "serve/wire.hpp"

namespace safe::serve {

/// Reconnect/backoff policy. Jitter is deterministic per (seed) — two runs
/// with the same seed draw the same jitter sequence.
struct RetryPolicy {
  std::size_t max_attempts = 8;  ///< total connection attempts per session
  std::uint64_t initial_backoff_ns = 25'000'000ULL;  ///< 25 ms
  std::uint64_t max_backoff_ns = 1'000'000'000ULL;   ///< 1 s
  double multiplier = 2.0;
  std::uint64_t jitter_seed = 1;
  /// ACK cadence: acknowledge received estimates every N steps so the
  /// server can trim its replay buffer.
  std::size_t ack_every = 32;
};

/// Why a resilient run gave up (kNone on success).
enum class StreamFailure : std::uint8_t {
  kNone = 0,
  kConnect,            ///< every attempt failed to connect
  kHandshake,          ///< server rejected HELLO with a fatal ERROR
  kResumeRejected,     ///< server rejected RESUME with a fatal ERROR
  kDeadline,           ///< overall deadline expired
  kServerStatus,       ///< non-retryable STATUS (e.g. draining)
  kServerError,        ///< mid-stream fatal ERROR frame
  kTransport,          ///< unrecoverable transport/protocol failure
  kAttemptsExhausted,  ///< retry budget spent before completion
};

[[nodiscard]] const char* to_string(StreamFailure failure);

struct ResilientResult {
  bool complete = false;
  std::vector<EstimateFrame> estimates;
  /// Raw wire bytes per accepted ESTIMATE, in step order (parity artifact).
  std::vector<std::vector<std::uint8_t>> estimate_frames;
  std::vector<ChallengeResultFrame> challenges;
  /// Send-to-receive latencies for estimates whose measurement was sent on
  /// the connection that delivered them (replayed frames have no stamp).
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t session_token = 0;

  std::size_t connects = 0;    ///< successful TCP connects
  std::size_t reconnects = 0;  ///< connects after the first
  std::size_t resumes = 0;     ///< RESUME handshakes accepted
  std::size_t restarts = 0;    ///< fresh-session restarts (resume rejected)
  std::size_t overload_backoffs = 0;  ///< STATUS kOverloaded sheds honored
  std::uint64_t duplicates_discarded = 0;  ///< replayed frames already held
  std::uint64_t replayed_frames = 0;  ///< frames the server replayed for us

  StreamFailure failure = StreamFailure::kNone;
  std::string failure_detail;
};

class ResilientClient {
 public:
  ResilientClient(std::string host, std::uint16_t port, RetryPolicy policy);

  /// Streams `trace` for `spec`, surviving disconnects and sheds, until
  /// every estimate arrived or the retry budget / deadline is spent.
  ResilientResult run(const TraceSpec& spec, const std::string& client_id,
                      const std::vector<MeasurementFrame>& trace,
                      std::uint64_t deadline_ns =
                          SessionClient::kDefaultDeadlineNs);

 private:
  const std::string host_;
  const std::uint16_t port_;
  const RetryPolicy policy_;
};

}  // namespace safe::serve
