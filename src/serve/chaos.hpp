// Deterministic network-fault-injecting TCP proxy (DESIGN.md §13).
//
// The chaos proxy sits between a session client and the serve::Server and
// perturbs the byte streams without understanding them: added latency and
// jitter, bandwidth throttling, re-splitting writes into arbitrary chunk
// sizes, bit corruption, scheduled or probabilistic mid-stream disconnects,
// and half-closes. All randomness comes from SplitMix64 streams derived
// from (seed, SeedStream::kChaos, connection index), so a soak run with a
// given seed exercises the same fault sequence every time.
//
// Spec grammar mirrors the fault mini-language (fault/schedule.hpp):
//   "latency:ms=5,jitter=3"            base delay + uniform jitter per chunk
//   "throttle:bps=65536"               token-bucket bandwidth cap
//   "split:min=1,max=7"                re-split forwarded writes to [min,max]
//   "corrupt:prob=0.001"               per-byte bit-flip probability
//   "disconnect:prob=0.01,after=4096"  cut per-chunk with prob, or once the
//                                      connection has forwarded `after` bytes
//   "halfclose:after=2048"             shutdown(client->server) after N bytes
// Directives are separated by ';' (or '+'); an empty spec or "none" is a
// transparent passthrough.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "runtime/seed.hpp"
#include "runtime/sync.hpp"

namespace safe::serve {

struct ChaosSpec {
  std::uint64_t latency_ns = 0;  ///< base delay added to every chunk
  std::uint64_t jitter_ns = 0;   ///< uniform extra delay in [0, jitter)
  std::uint64_t throttle_bytes_per_sec = 0;  ///< 0 = unthrottled
  std::size_t split_min = 0;  ///< 0 = no re-splitting
  std::size_t split_max = 0;
  double corrupt_prob = 0.0;     ///< per-byte bit-flip probability
  double disconnect_prob = 0.0;  ///< per-forwarded-chunk cut probability
  std::uint64_t disconnect_after_bytes = 0;  ///< 0 = no scheduled cut
  std::uint64_t half_close_after_bytes = 0;  ///< 0 = no half-close

  [[nodiscard]] bool passthrough() const {
    return latency_ns == 0 && jitter_ns == 0 && throttle_bytes_per_sec == 0 &&
           split_min == 0 && corrupt_prob == 0.0 && disconnect_prob == 0.0 &&
           disconnect_after_bytes == 0 && half_close_after_bytes == 0;
  }
};

/// Parses the chaos spec mini-language. Throws std::invalid_argument with a
/// message naming the offending token. Empty spec / "none" -> passthrough.
[[nodiscard]] ChaosSpec parse_chaos_spec(const std::string& spec);

/// One-line usage string for CLIs exposing `--chaos`.
[[nodiscard]] std::string chaos_spec_help();

/// The per-connection fault plan: a pure deterministic draw sequence over
/// one SplitMix64 stream. Separated from the proxy's socket plumbing so the
/// draw logic is unit-testable without networking.
class ChaosPlan {
 public:
  ChaosPlan(const ChaosSpec& spec, std::uint64_t seed,
            std::uint64_t connection_index)
      : spec_(spec),
        rng_(runtime::derive_seed(seed, runtime::SeedStream::kChaos,
                                  connection_index)) {}

  /// Size of the next forwarded write given `available` pending bytes.
  [[nodiscard]] std::size_t next_chunk_len(std::size_t available);

  /// Delay (ns) applied to a chunk read off the wire before it is eligible
  /// for forwarding: latency + uniform jitter.
  [[nodiscard]] std::uint64_t next_delay_ns();

  /// Flips random bits in-place per the corruption probability; returns the
  /// number of corrupted bytes.
  std::size_t corrupt(std::uint8_t* data, std::size_t size);

  /// True when this connection should be cut: a per-chunk probability draw,
  /// or the scheduled byte threshold has been crossed.
  [[nodiscard]] bool should_disconnect(std::uint64_t total_forwarded_bytes);

  /// True when the client->server direction should be half-closed.
  [[nodiscard]] bool should_half_close(std::uint64_t c2s_forwarded_bytes)
      const {
    return spec_.half_close_after_bytes != 0 &&
           c2s_forwarded_bytes >= spec_.half_close_after_bytes;
  }

  [[nodiscard]] const ChaosSpec& spec() const { return spec_; }

 private:
  ChaosSpec spec_;
  runtime::SplitMix64 rng_;
};

/// A single-threaded poll-based TCP interposer. Accepts on its own port and
/// forwards each connection to target host:port through a ChaosPlan seeded
/// by the accept index.
class ChaosProxy {
 public:
  ChaosProxy(ChaosSpec spec, std::uint64_t seed, std::string target_host,
             std::uint16_t target_port);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listening socket (port 0 = ephemeral); throws on failure.
  void bind_and_listen(const std::string& host, std::uint16_t port);

  /// Port actually bound (valid after bind_and_listen).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Runs the proxy loop until request_stop(). Call from a dedicated thread.
  void run();

  /// Signals run() to drop every link and return.
  void request_stop();

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t connect_failures = 0;  ///< upstream connect() failed
    std::uint64_t disconnects_injected = 0;
    std::uint64_t half_closes_injected = 0;
    std::uint64_t bytes_forwarded = 0;
    std::uint64_t corrupted_bytes = 0;
    std::uint64_t resplit_writes = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Chunk {
    std::vector<std::uint8_t> bytes;
    std::size_t offset = 0;
    std::uint64_t release_ns = 0;
  };

  /// One forwarding direction of a link.
  struct Pipe {
    std::deque<Chunk> chunks;
    std::size_t buffered = 0;
    bool src_eof = false;   ///< source half-closed; flush then propagate
    bool shut = false;      ///< SHUT_WR already sent on the destination
    double tokens = 0.0;    ///< throttle token bucket
    std::uint64_t last_refill_ns = 0;
    std::uint64_t forwarded = 0;
  };

  struct Link {
    int client_fd = -1;
    int server_fd = -1;
    ChaosPlan plan;
    Pipe c2s;  ///< client -> server
    Pipe s2c;  ///< server -> client
    std::uint64_t total_forwarded = 0;
    bool half_closed = false;
  };

  void accept_ready(std::uint64_t now);
  /// Forwards one eligible chunk; returns false when the link must close.
  bool flush_pipe(Link& link, Pipe& pipe, int dst_fd, bool client_to_server,
                  std::uint64_t now);
  void close_link(Link& link);

  const ChaosSpec spec_;
  const std::uint64_t seed_;
  const std::string target_host_;
  const std::uint16_t target_port_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::uint64_t next_connection_index_ = 0;
  std::vector<Link> links_;

  mutable runtime::Mutex stats_mutex_;
  Stats stats_ SAFE_GUARDED_BY(stats_mutex_);
};

}  // namespace safe::serve
