// Blocking-with-deadline client for the streaming session protocol.
//
// Used by the load generator, the loopback tests, and the serving
// throughput ablation. stream() interleaves sends and receives through
// poll() — it never writes the whole trace before reading, because the
// server's outbound backpressure would (correctly) disconnect a peer that
// streams without draining its replies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace safe::serve {

class SessionClient {
 public:
  SessionClient() = default;
  ~SessionClient();

  SessionClient(const SessionClient&) = delete;
  SessionClient& operator=(const SessionClient&) = delete;

  /// Connects to host:port; throws std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port);

  /// Result of the HELLO handshake. Exactly one of status/error is
  /// meaningful when ok/closed say so.
  struct OpenReply {
    bool ok = false;        ///< STATUS kHelloOk received
    StatusFrame status;     ///< valid when the server answered with STATUS
    ErrorFrame error;       ///< valid when the server answered with ERROR
    bool has_error = false;
    std::string transport_error;  ///< non-empty on socket/decoder failure
  };

  /// Sends HELLO and waits (up to deadline) for the server's verdict.
  OpenReply open_session(const HelloFrame& hello,
                         std::uint64_t deadline_ns = kDefaultDeadlineNs);

  struct StreamResult {
    bool complete = false;  ///< one ESTIMATE arrived per MEASUREMENT sent
    std::vector<EstimateFrame> estimates;
    /// Raw wire bytes of each ESTIMATE frame, in arrival order — the
    /// byte-parity artifact compared against offline encoding.
    std::vector<std::vector<std::uint8_t>> estimate_frames;
    std::vector<ChallengeResultFrame> challenges;
    /// Send-to-receive latency of each ESTIMATE, aligned with `estimates`.
    std::vector<std::uint64_t> latencies_ns;
    std::optional<StatusFrame> status;  ///< unsolicited STATUS that ended it
    std::optional<ErrorFrame> error;
    std::string transport_error;
  };

  /// Streams the measurement trace and collects every reply frame.
  StreamResult stream(const std::vector<MeasurementFrame>& measurements,
                      std::uint64_t deadline_ns = kDefaultDeadlineNs);

  /// Sends raw bytes as-is (malformed-input tests). Throws on socket error.
  void send_raw(const std::vector<std::uint8_t>& bytes);

  /// Waits for the next frame. nullopt on timeout, peer close, or decode
  /// failure (reason() explains which).
  std::optional<Frame> recv_frame(std::uint64_t deadline_ns);

  /// Why the last recv_frame() returned nullopt.
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Underlying socket fd (-1 when closed). Tests use it to assert socket
  /// options (TCP_NODELAY) on a live loopback connection.
  [[nodiscard]] int native_handle() const noexcept { return fd_; }

  void close() noexcept;

  static constexpr std::uint64_t kDefaultDeadlineNs = 30'000'000'000ULL;

 private:
  bool send_all(const std::uint8_t* data, std::size_t size);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::string reason_;
};

}  // namespace safe::serve
