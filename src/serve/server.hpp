// Poll-based streaming session server (DESIGN.md §12).
//
// One event-loop thread owns every socket: it accepts connections, lifts
// frames off non-blocking reads, and flushes bounded outbound queues.
// Pipeline work never runs on the loop — decoded MEASUREMENT frames are
// batched per connection and dispatched onto the shared runtime::ThreadPool,
// with at most one batch in flight per connection so a session's stream is
// processed strictly in order (the serving parity contract). Workers hand
// encoded reply frames back through a shared-ownership completion channel
// that also owns the wake socketpair's write end, so a worker finishing
// after run() returns — even after the StreamServer itself is destroyed —
// never touches server memory or a server-owned fd.
//
// Backpressure, both directions:
//   * inbound — a connection with max_pending_frames decoded-but-unprocessed
//     measurements stops being polled for reads until the backlog halves,
//     so TCP flow control pushes back on the producer;
//   * outbound — a connection whose unsent reply bytes exceed
//     max_outbound_bytes is a slow consumer: its queue is dropped, a STATUS
//     frame with the reason is sent, and the connection closes.
//
// Graceful drain: request_drain() (thread- and signal-safe) stops the
// listener, stops reading, lets every in-flight batch finish, flushes a
// STATUS kDraining to each client, and returns from run() once the last
// connection closes and the last worker task completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/sync.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"

namespace safe::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned; see StreamServer::port().
  std::uint64_t master_seed = 1;  ///< Session-token derivation seed.
  SessionLimits session{};
  /// Outbound queue cap per connection; beyond it the peer is a slow
  /// consumer and is disconnected (STATUS kSlowConsumer).
  std::size_t max_outbound_bytes = 256 * 1024;
  /// Decoded-but-unprocessed measurement cap per connection; beyond it the
  /// connection stops being read until the pipeline catches up.
  std::size_t max_pending_frames = 64;
  /// Cadence of the idle-session eviction sweep.
  std::uint64_t idle_check_period_ns = 250'000'000ULL;
  /// How long a drain waits for clients to absorb their final frames before
  /// force-closing. Bounds run()'s exit even against a wedged peer.
  std::uint64_t drain_grace_ns = 5'000'000'000ULL;
  /// Admission control (DESIGN.md §13): a HELLO or RESUME arriving while
  /// this many pipeline batches are in flight is shed with STATUS
  /// kOverloaded instead of queueing behind them. 0 = no admission control.
  std::size_t admission_max_batches = 0;
  /// Per-frame deadline: a connection whose oldest undispatched measurement
  /// has waited longer than this is shed with STATUS kOverloaded (its
  /// session stays resumable). 0 = no deadline.
  std::uint64_t frame_deadline_ns = 0;
};

/// Monotonic totals over the server's lifetime; readable concurrently.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t frames_in = 0;   ///< MEASUREMENT frames decoded
  std::uint64_t frames_out = 0;  ///< frames queued toward clients
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t slow_consumer_disconnects = 0;
  std::uint64_t sessions_resumed = 0;   ///< RESUME frames accepted
  std::uint64_t resume_rejects = 0;     ///< RESUME rejected (any reason)
  std::uint64_t replayed_frames = 0;    ///< frames re-sent from replay buffers
  std::uint64_t shed_hellos = 0;        ///< HELLO/RESUME shed by admission
  std::uint64_t deadline_sheds = 0;     ///< connections shed by frame deadline
  std::uint64_t nodelay_failures = 0;   ///< accepted sockets where TCP_NODELAY
                                        ///< could not be set (expected 0)
};

class StreamServer {
 public:
  /// The pool is shared infrastructure (the caller may size it to the
  /// machine); the server only submits work and never shuts it down.
  StreamServer(ServerOptions options, runtime::ThreadPool& pool);
  ~StreamServer();

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Binds and listens; throws std::runtime_error on failure. After this
  /// returns, port() is the actual bound port (resolves port 0).
  void bind_and_listen();

  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Runs the event loop until a drain completes. Call from one thread.
  void run();

  /// Initiates graceful drain. Safe from any thread and from a signal
  /// handler (atomic store + self-pipe write only).
  void request_drain() noexcept;

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] SessionManager::Counters session_counters() const {
    return sessions_.counters();
  }
  [[nodiscard]] std::size_t live_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::size_t detached_sessions() const {
    return sessions_.detached_size();
  }

 private:
  struct PendingMeasurement {
    MeasurementFrame frame;
    std::uint64_t enqueued_ns = 0;  ///< for the per-frame deadline
  };

  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    SessionPtr session;  ///< null until a HELLO/RESUME is accepted
    std::deque<PendingMeasurement> pending;
    bool busy = false;           ///< a batch is on the pool
    bool reading_paused = false;
    bool close_after_flush = false;
    std::deque<std::vector<std::uint8_t>> outbound;
    std::size_t outbound_head = 0;   ///< sent bytes of outbound.front()
    std::size_t outbound_bytes = 0;  ///< unsent total across the deque
  };

  struct Completion {
    std::uint64_t connection_id = 0;
    std::vector<std::uint8_t> bytes;  ///< encoded reply frames, in order
    std::uint64_t frames = 0;
    bool failed = false;  ///< a task-level failure; connection must close
    std::string error;
  };

  /// Worker-to-loop handoff. Held by shared_ptr from the server and from
  /// every in-flight pool task, and owns the wake socketpair's write end, so
  /// a worker that completes after run() returns (or after the server is
  /// destroyed) still has a valid queue and fd to deliver into.
  struct CompletionChannel {
    CompletionChannel() = default;
    ~CompletionChannel();
    CompletionChannel(const CompletionChannel&) = delete;
    CompletionChannel& operator=(const CompletionChannel&) = delete;

    void push(Completion&& done);
    /// Async-signal-safe (send with MSG_NOSIGNAL only).
    void wake() noexcept;

    runtime::Mutex mutex;
    std::vector<Completion> items SAFE_GUARDED_BY(mutex);
    int wake_write_fd = -1;  ///< set once in bind_and_listen(), closed here
  };

  void accept_ready();
  void read_ready(Connection& conn);
  void write_ready(Connection& conn);
  void pump_frames(Connection& conn);
  void handle_hello(Connection& conn, const Frame& frame);
  void handle_resume(Connection& conn, const Frame& frame);
  void handle_ack(Connection& conn, const Frame& frame);
  void dispatch(Connection& conn);
  void drain_completions();
  void enqueue_bytes(Connection& conn, const std::vector<std::uint8_t>& bytes,
                     std::uint64_t frame_count);
  void enqueue_frame(Connection& conn, const std::vector<std::uint8_t>& bytes);
  void check_outbound_limit(Connection& conn);
  void fail_connection(Connection& conn, ErrorCode code, std::string message,
                       bool count_decode_error);
  /// Load shed: STATUS kOverloaded, then close (the session, if any, stays
  /// resumable through the detach-on-close path).
  void shed_connection(Connection& conn, std::string message);
  void enforce_frame_deadlines();
  [[nodiscard]] bool admission_overloaded() const;
  void close_connection(Connection& conn);
  void begin_drain();
  void evict_idle_sessions();

  ServerOptions options_;
  runtime::ThreadPool& pool_;
  SessionManager sessions_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  std::uint16_t bound_port_ = 0;

  std::uint64_t next_connection_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  /// Listener polling pauses until this deadline after EMFILE/ENFILE-class
  /// accept failures, so fd exhaustion cannot busy-spin the event loop.
  std::uint64_t accept_backoff_until_ns_ = 0;

  std::shared_ptr<CompletionChannel> channel_ =
      std::make_shared<CompletionChannel>();
  std::atomic<std::size_t> outstanding_batches_{0};

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  std::uint64_t last_idle_check_ns_ = 0;

  mutable runtime::Mutex stats_mutex_;
  ServerStats stats_ SAFE_GUARDED_BY(stats_mutex_);
};

}  // namespace safe::serve
