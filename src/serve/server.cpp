#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "serve/net_util.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::serve {

namespace {

// Service-layer observability (DESIGN.md §12). Frame and session counts are
// a pure function of the client workload; everything socket-shaped is not.
const telemetry::MetricId& accepts_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.accepts", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& frames_in_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.frames_in", telemetry::Stability::kDeterministic);
  return id;
}

const telemetry::MetricId& frames_out_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.frames_out", telemetry::Stability::kDeterministic);
  return id;
}

const telemetry::MetricId& decode_errors_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.decode_errors", telemetry::Stability::kDeterministic);
  return id;
}

const telemetry::MetricId& slow_consumer_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.slow_consumer_disconnects",
      telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& outbound_bytes_metric() {
  static const telemetry::MetricId id =
      telemetry::gauge_max("serve.outbound_bytes_max");
  return id;
}

const telemetry::MetricId& pending_frames_metric() {
  static const telemetry::MetricId id =
      telemetry::gauge_max("serve.pending_frames_max");
  return id;
}

const telemetry::MetricId& batch_ns_metric() {
  static const telemetry::MetricId id =
      telemetry::duration_histogram("serve.batch_ns");
  return id;
}

const telemetry::MetricId& resumes_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.resumes", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& resume_rejects_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.resume_rejects", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& replayed_frames_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.replayed_frames", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& shed_hellos_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.shed_hellos", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& deadline_sheds_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.deadline_sheds", telemetry::Stability::kSchedulingDependent);
  return id;
}

/// How long the listener stays out of the poll set after an accept failure
/// that signals resource exhaustion (EMFILE/ENFILE/...). Without a backoff
/// the still-readable listener would make every poll() return immediately.
constexpr std::uint64_t kAcceptBackoffNs = 100'000'000ULL;

}  // namespace

StreamServer::CompletionChannel::~CompletionChannel() {
  if (wake_write_fd >= 0) ::close(wake_write_fd);
}

void StreamServer::CompletionChannel::push(Completion&& done) {
  {
    runtime::MutexLock guard(mutex);
    items.push_back(std::move(done));
  }
  wake();
}

void StreamServer::CompletionChannel::wake() noexcept {
  if (wake_write_fd >= 0) {
    const char byte = 'w';
    // MSG_NOSIGNAL: no SIGPIPE even if the read end is already closed; a
    // full socket buffer already guarantees a pending wake-up.
    [[maybe_unused]] const ssize_t n =
        ::send(wake_write_fd, &byte, 1, MSG_NOSIGNAL);
  }
}

StreamServer::StreamServer(ServerOptions options, runtime::ThreadPool& pool)
    : options_(std::move(options)),
      pool_(pool),
      sessions_(options_.session, options_.master_seed) {}

StreamServer::~StreamServer() {
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  // channel_ (and the wake write fd it owns) stays alive until the last
  // in-flight worker task drops its reference.
}

void StreamServer::bind_and_listen() {
  if (listen_fd_ >= 0) throw std::runtime_error("server already listening");

  int wake_fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0,
                   wake_fds) != 0) {
    throw std::runtime_error("socketpair() failed: " +
                             errno_string(errno));
  }
  wake_read_fd_ = wake_fds[0];
  channel_->wake_write_fd = wake_fds[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("socket() failed: " +
                             errno_string(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    throw std::runtime_error("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("bind(" + options_.bind_address + ":" +
                             std::to_string(options_.port) +
                             ") failed: " + errno_string(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    throw std::runtime_error("listen() failed: " +
                             errno_string(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }
}

void StreamServer::request_drain() noexcept {
  drain_requested_.store(true, std::memory_order_release);
  channel_->wake();
}

ServerStats StreamServer::stats() const {
  runtime::MutexLock guard(stats_mutex_);
  return stats_;
}

void StreamServer::run() {
  if (listen_fd_ < 0) {
    throw std::runtime_error("run() before bind_and_listen()");
  }
  std::uint64_t drain_started_ns = 0;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn_ids;

  while (true) {
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      begin_drain();
      drain_started_ns = telemetry::now_ns();
    }
    if (draining_ && connections_.empty() &&
        outstanding_batches_.load(std::memory_order_acquire) == 0) {
      break;
    }
    if (draining_ && drain_started_ns != 0 &&
        telemetry::now_ns() - drain_started_ns > options_.drain_grace_ns) {
      // A peer refusing to read its final frames must not wedge shutdown.
      // No `continue`: the iteration must still reach poll() and
      // drain_completions() below, since in-flight pipeline batches are the
      // only thing that can now be holding run() open and
      // outstanding_batches_ is decremented only in drain_completions().
      std::vector<std::uint64_t> ids;
      ids.reserve(connections_.size());
      for (const auto& [id, conn] : connections_) ids.push_back(id);
      for (const std::uint64_t id : ids) {
        const auto it = connections_.find(id);
        if (it != connections_.end()) close_connection(*it->second);
      }
    }

    fds.clear();
    fd_conn_ids.clear();
    fds.push_back(pollfd{.fd = wake_read_fd_, .events = POLLIN, .revents = 0});
    fd_conn_ids.push_back(0);
    if (!draining_ && telemetry::now_ns() >= accept_backoff_until_ns_) {
      fds.push_back(
          pollfd{.fd = listen_fd_, .events = POLLIN, .revents = 0});
      fd_conn_ids.push_back(0);
    }
    for (const auto& [id, conn] : connections_) {
      short events = 0;
      if (!conn->reading_paused && !conn->close_after_flush) events |= POLLIN;
      if (conn->outbound_bytes > 0) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{.fd = conn->fd, .events = events, .revents = 0});
      fd_conn_ids.push_back(id);
    }

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error("poll() failed: " +
                               errno_string(errno));
    }

    for (std::size_t i = 0; i < fds.size() && ready > 0; ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      if (p.fd == wake_read_fd_) {
        char sink[64];
        while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (p.fd == listen_fd_ && !draining_) {
        accept_ready();
        continue;
      }
      const auto it = connections_.find(fd_conn_ids[i]);
      if (it == connections_.end()) continue;  // closed earlier this pass
      Connection& conn = *it->second;
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (p.revents & POLLIN) == 0) {
        close_connection(conn);
        continue;
      }
      if ((p.revents & POLLOUT) != 0) write_ready(conn);
      if (connections_.find(fd_conn_ids[i]) == connections_.end()) continue;
      if ((p.revents & POLLIN) != 0) read_ready(conn);
    }

    drain_completions();
    enforce_frame_deadlines();
    evict_idle_sessions();

    // Reap connections whose goodbye is fully flushed and whose pipeline
    // work has finished.
    std::vector<std::uint64_t> reap;
    for (const auto& [id, conn] : connections_) {
      if (conn->close_after_flush && conn->outbound_bytes == 0 &&
          !conn->busy && conn->pending.empty()) {
        reap.push_back(id);
      }
    }
    for (const std::uint64_t id : reap) {
      const auto it = connections_.find(id);
      if (it != connections_.end()) close_connection(*it->second);
    }
  }
}

void StreamServer::begin_drain() {
  draining_ = true;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  telemetry::instant_event("serve.drain", "serve");
  for (auto& [id, conn] : connections_) {
    conn->reading_paused = true;
    // Decoded-but-undispatched measurements would only produce replies the
    // close_after_flush path discards; drop them so the drain does not burn
    // worker time racing the grace deadline.
    conn->pending.clear();
    if (!conn->close_after_flush) {
      enqueue_frame(*conn, encode(StatusFrame{
                               .code = StatusCode::kDraining,
                               .session_token =
                                   conn->session ? conn->session->token() : 0,
                               .message = "server draining",
                           }));
      conn->close_after_flush = true;
    }
  }
}

void StreamServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds/buffers: the listener stays readable, so stop polling
        // it for a tick instead of letting poll() spin at 100% CPU.
        accept_backoff_until_ns_ = telemetry::now_ns() + kAcceptBackoffNs;
        return;
      }
      return;  // other transient accept failures are not fatal to the loop
    }
    const bool nodelay_ok = set_tcp_nodelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->id = next_connection_id_++;
    conn->fd = fd;
    const std::uint64_t id = conn->id;
    connections_.emplace(id, std::move(conn));
    {
      runtime::MutexLock guard(stats_mutex_);
      ++stats_.accepted;
      if (!nodelay_ok) ++stats_.nodelay_failures;
    }
    telemetry::add(accepts_metric());
  }
}

void StreamServer::read_ready(Connection& conn) {
  std::uint8_t buffer[16384];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      {
        runtime::MutexLock guard(stats_mutex_);
        stats_.bytes_in += static_cast<std::uint64_t>(n);
      }
      conn.decoder.feed(buffer, static_cast<std::size_t>(n));
      pump_frames(conn);
      if (connections_.find(conn.id) == connections_.end()) return;
      if (conn.reading_paused || conn.close_after_flush) return;
      continue;
    }
    if (n == 0) {  // peer closed; nothing left to deliver to it
      close_connection(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    close_connection(conn);
    return;
  }
}

void StreamServer::pump_frames(Connection& conn) {
  while (true) {
    std::optional<Frame> frame = conn.decoder.next();
    if (!frame.has_value()) break;
    switch (frame->type) {
      case FrameType::kHello:
        handle_hello(conn, *frame);
        break;
      case FrameType::kResume:
        handle_resume(conn, *frame);
        break;
      case FrameType::kAck:
        handle_ack(conn, *frame);
        break;
      case FrameType::kMeasurement: {
        if (!conn.session) {
          fail_connection(conn, ErrorCode::kProtocolOrder,
                          "MEASUREMENT before HELLO", false);
          return;
        }
        MeasurementFrame m;
        std::string error;
        if (!decode(*frame, m, &error)) {
          fail_connection(conn, ErrorCode::kMalformedFrame, error, true);
          return;
        }
        conn.pending.push_back(PendingMeasurement{
            .frame = m, .enqueued_ns = telemetry::now_ns()});
        telemetry::add(frames_in_metric());
        telemetry::gauge_update_max(pending_frames_metric(),
                                    static_cast<double>(conn.pending.size()));
        {
          runtime::MutexLock guard(stats_mutex_);
          ++stats_.frames_in;
        }
        break;
      }
      default:
        fail_connection(conn, ErrorCode::kProtocolOrder,
                        std::string("client sent server-only frame ") +
                            to_string(frame->type),
                        false);
        return;
    }
    if (conn.close_after_flush) return;
  }
  if (conn.decoder.failed()) {
    fail_connection(conn, ErrorCode::kMalformedFrame, conn.decoder.error(),
                    true);
    return;
  }
  if (!conn.pending.empty() && !conn.busy) dispatch(conn);
  if (conn.pending.size() >= options_.max_pending_frames) {
    conn.reading_paused = true;
  }
}

bool StreamServer::admission_overloaded() const {
  return options_.admission_max_batches > 0 &&
         outstanding_batches_.load(std::memory_order_acquire) >=
             options_.admission_max_batches;
}

void StreamServer::shed_connection(Connection& conn, std::string message) {
  conn.reading_paused = true;
  conn.pending.clear();
  if (!conn.close_after_flush) {
    enqueue_frame(conn, encode(StatusFrame{
                            .code = StatusCode::kOverloaded,
                            .session_token =
                                conn.session ? conn.session->token() : 0,
                            .message = std::move(message),
                        }));
    conn.close_after_flush = true;
  }
}

void StreamServer::handle_hello(Connection& conn, const Frame& frame) {
  if (conn.session) {
    fail_connection(conn, ErrorCode::kProtocolOrder, "duplicate HELLO", false);
    return;
  }
  HelloFrame hello;
  std::string error;
  if (!decode(frame, hello, &error)) {
    fail_connection(conn, ErrorCode::kMalformedFrame, error, true);
    return;
  }
  if (admission_overloaded()) {
    telemetry::add(shed_hellos_metric());
    {
      runtime::MutexLock guard(stats_mutex_);
      ++stats_.shed_hellos;
    }
    shed_connection(conn, "admission control: " +
                              std::to_string(outstanding_batches_.load(
                                  std::memory_order_acquire)) +
                              " batches in flight; retry after backoff");
    return;
  }
  SessionManager::OpenResult result =
      sessions_.open(hello, telemetry::now_ns());
  if (!result.session) {
    fail_connection(conn, result.error_code, result.error, false);
    return;
  }
  conn.session = std::move(result.session);
  enqueue_frame(conn, encode(StatusFrame{
                          .code = StatusCode::kHelloOk,
                          .session_token = conn.session->token(),
                          .message = "session open",
                      }));
}

void StreamServer::handle_resume(Connection& conn, const Frame& frame) {
  if (conn.session) {
    fail_connection(conn, ErrorCode::kProtocolOrder,
                    "RESUME on a connection with an open session", false);
    return;
  }
  ResumeFrame resume;
  std::string error;
  if (!decode(frame, resume, &error)) {
    fail_connection(conn, ErrorCode::kMalformedFrame, error, true);
    return;
  }
  const auto reject = [this](std::uint64_t count = 1) {
    telemetry::add(resume_rejects_metric(), count);
    runtime::MutexLock guard(stats_mutex_);
    stats_.resume_rejects += count;
  };
  if (admission_overloaded()) {
    reject();
    telemetry::add(shed_hellos_metric());
    {
      runtime::MutexLock guard(stats_mutex_);
      ++stats_.shed_hellos;
    }
    shed_connection(conn, "admission control: resume shed; retry after "
                          "backoff");
    return;
  }
  // A RESUME can race the server noticing the old connection's death (the
  // chaos proxy cuts both sides, but poll order is arbitrary). The token is
  // proof of ownership, so the resume takes over: force-close the stale
  // connection, which detaches the session for the resume below.
  std::uint64_t stale_id = 0;
  for (const auto& [id, other] : connections_) {
    if (id != conn.id && other->session &&
        other->session->token() == resume.session_token) {
      stale_id = id;
      break;
    }
  }
  if (stale_id != 0) {
    const auto it = connections_.find(stale_id);
    if (it != connections_.end()) close_connection(*it->second);
  }
  const std::uint64_t now = telemetry::now_ns();
  SessionManager::ResumeResult result = sessions_.resume(resume.session_token,
                                                         now);
  switch (result.status) {
    case SessionManager::ResumeStatus::kUnknown:
      reject();
      fail_connection(conn, ErrorCode::kResumeUnknown,
                      "unknown, expired, or finished session token", false);
      return;
    case SessionManager::ResumeStatus::kBusy:
      reject();
      shed_connection(conn, "session batch still in flight; retry after "
                            "backoff");
      return;
    case SessionManager::ResumeStatus::kCapacity:
      reject();
      shed_connection(conn, "live session cap reached; retry after backoff");
      return;
    case SessionManager::ResumeStatus::kOk:
      break;
  }
  const std::int64_t last_processed = result.session->last_processed_step();
  if (resume.last_step > last_processed) {
    // The client claims frames this session never produced.
    reject();
    sessions_.close(resume.session_token, now);
    fail_connection(conn, ErrorCode::kProtocolOrder,
                    "RESUME last_step " + std::to_string(resume.last_step) +
                        " is beyond the session's last processed step " +
                        std::to_string(last_processed),
                    false);
    return;
  }
  Session::Replay replay = result.session->collect_replay(resume.last_step);
  if (replay.gap) {
    reject();
    sessions_.close(resume.session_token, now);
    fail_connection(conn, ErrorCode::kResumeGap,
                    "replay window no longer reaches back to step " +
                        std::to_string(resume.last_step) +
                        "; restart the session",
                    false);
    return;
  }
  conn.session = std::move(result.session);
  enqueue_frame(conn, encode(ResumeOkFrame{
                          .session_token = resume.session_token,
                          .next_step = last_processed + 1,
                          .replayed_frames = replay.frames,
                      }));
  if (!replay.bytes.empty()) {
    enqueue_bytes(conn, replay.bytes, replay.frames);
    telemetry::add(replayed_frames_metric(), replay.frames);
    runtime::MutexLock guard(stats_mutex_);
    stats_.replayed_frames += replay.frames;
  }
  telemetry::add(resumes_metric());
  telemetry::instant_event("serve.session_resume", "serve");
  {
    runtime::MutexLock guard(stats_mutex_);
    ++stats_.sessions_resumed;
  }
}

void StreamServer::handle_ack(Connection& conn, const Frame& frame) {
  if (!conn.session) {
    fail_connection(conn, ErrorCode::kProtocolOrder, "ACK before HELLO",
                    false);
    return;
  }
  AckFrame ack;
  std::string error;
  if (!decode(frame, ack, &error)) {
    fail_connection(conn, ErrorCode::kMalformedFrame, error, true);
    return;
  }
  conn.session->ack(ack.last_step);
}

void StreamServer::enforce_frame_deadlines() {
  if (options_.frame_deadline_ns == 0) return;
  const std::uint64_t now = telemetry::now_ns();
  std::vector<std::uint64_t> shed;
  for (const auto& [id, conn] : connections_) {
    if (conn->close_after_flush || conn->pending.empty()) continue;
    if (now - conn->pending.front().enqueued_ns > options_.frame_deadline_ns) {
      shed.push_back(id);
    }
  }
  for (const std::uint64_t id : shed) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    telemetry::add(deadline_sheds_metric());
    {
      runtime::MutexLock guard(stats_mutex_);
      ++stats_.deadline_sheds;
    }
    shed_connection(*it->second,
                    "frame deadline exceeded; shedding load — resume after "
                    "backoff");
  }
}

void StreamServer::dispatch(Connection& conn) {
  std::vector<MeasurementFrame> batch;
  batch.reserve(conn.pending.size());
  for (const PendingMeasurement& p : conn.pending) batch.push_back(p.frame);
  conn.pending.clear();
  conn.busy = true;
  outstanding_batches_.fetch_add(1, std::memory_order_acq_rel);

  SessionPtr session = conn.session;
  session->batch_begin();
  const std::uint64_t conn_id = conn.id;
  // The task captures the channel by shared_ptr, never `this`: a worker
  // finishing after run() returns (and even after the server is destroyed)
  // must not touch server memory.
  pool_.submit([channel = channel_, session = std::move(session), conn_id,
                batch = std::move(batch)]() mutable {
    Completion done;
    done.connection_id = conn_id;
    try {
      telemetry::ScopedTimer span("serve.session", "serve", batch_ns_metric(),
                                  telemetry::TraceDetail::kFine);
      span.arg("frames", static_cast<std::int64_t>(batch.size()));
      span.arg("token",
               static_cast<std::int64_t>(session->token() & 0x7fffffff));
      for (const MeasurementFrame& m : batch) {
        const Session::StepOutput out =
            session->process(m, telemetry::now_ns());
        std::vector<std::uint8_t> step_bytes = encode(out.estimate);
        std::uint64_t step_frames = 1;
        if (out.challenge.has_value()) {
          const std::vector<std::uint8_t> challenge = encode(*out.challenge);
          step_bytes.insert(step_bytes.end(), challenge.begin(),
                            challenge.end());
          ++step_frames;
        }
        done.bytes.insert(done.bytes.end(), step_bytes.begin(),
                          step_bytes.end());
        done.frames += step_frames;
        // Retain for replay-on-resume before the bytes are handed to the
        // loop, so a resume can never observe a processed step with no
        // retained output.
        session->record_step_output(m.step, std::move(step_bytes),
                                    step_frames);
      }
    } catch (const std::exception& e) {
      done.failed = true;
      done.error = e.what();
    } catch (...) {
      done.failed = true;
      done.error = "unknown pipeline failure";
    }
    session->batch_end();
    channel->push(std::move(done));
  });
}

void StreamServer::drain_completions() {
  std::vector<Completion> done;
  {
    runtime::MutexLock guard(channel_->mutex);
    done.swap(channel_->items);
  }
  for (Completion& completion : done) {
    outstanding_batches_.fetch_sub(1, std::memory_order_acq_rel);
    const auto it = connections_.find(completion.connection_id);
    if (it == connections_.end()) continue;  // connection died meanwhile
    Connection& conn = *it->second;
    conn.busy = false;
    if (completion.failed) {
      fail_connection(conn, ErrorCode::kInternal, completion.error, false);
      continue;
    }
    if (!conn.close_after_flush) {
      if (!completion.bytes.empty()) {
        conn.outbound.push_back(std::move(completion.bytes));
        conn.outbound_bytes += conn.outbound.back().size();
        telemetry::add(frames_out_metric(), completion.frames);
        telemetry::gauge_update_max(
            outbound_bytes_metric(),
            static_cast<double>(conn.outbound_bytes));
        {
          runtime::MutexLock guard(stats_mutex_);
          stats_.frames_out += completion.frames;
        }
        check_outbound_limit(conn);
        if (conn.close_after_flush) continue;  // became a slow consumer
      }
      write_ready(conn);  // opportunistic flush without waiting for poll
      if (connections_.find(completion.connection_id) ==
          connections_.end()) {
        continue;
      }
    }
    if (!conn.pending.empty() && !conn.busy) dispatch(conn);
    if (conn.reading_paused && !conn.close_after_flush &&
        conn.pending.size() < options_.max_pending_frames / 2) {
      conn.reading_paused = false;
    }
  }
}

void StreamServer::enqueue_bytes(Connection& conn,
                                 const std::vector<std::uint8_t>& bytes,
                                 std::uint64_t frame_count) {
  conn.outbound.push_back(bytes);
  conn.outbound_bytes += bytes.size();
  telemetry::add(frames_out_metric(), frame_count);
  telemetry::gauge_update_max(outbound_bytes_metric(),
                              static_cast<double>(conn.outbound_bytes));
  {
    runtime::MutexLock guard(stats_mutex_);
    stats_.frames_out += frame_count;
  }
  check_outbound_limit(conn);
}

void StreamServer::enqueue_frame(Connection& conn,
                                 const std::vector<std::uint8_t>& bytes) {
  enqueue_bytes(conn, bytes, 1);
}

void StreamServer::check_outbound_limit(Connection& conn) {
  if (conn.outbound_bytes <= options_.max_outbound_bytes ||
      conn.close_after_flush) {
    return;
  }
  // Slow consumer: drop the queue it is not absorbing, explain, disconnect.
  conn.outbound.clear();
  conn.outbound_head = 0;
  conn.outbound_bytes = 0;
  conn.reading_paused = true;
  conn.pending.clear();
  conn.close_after_flush = true;
  const std::vector<std::uint8_t> status = encode(StatusFrame{
      .code = StatusCode::kSlowConsumer,
      .session_token = conn.session ? conn.session->token() : 0,
      .message = "outbound queue exceeded " +
                 std::to_string(options_.max_outbound_bytes) + " bytes",
  });
  conn.outbound.push_back(status);
  conn.outbound_bytes = status.size();
  telemetry::add(slow_consumer_metric());
  {
    runtime::MutexLock guard(stats_mutex_);
    ++stats_.slow_consumer_disconnects;
  }
}

void StreamServer::fail_connection(Connection& conn, ErrorCode code,
                                   std::string message,
                                   bool count_decode_error) {
  {
    runtime::MutexLock guard(stats_mutex_);
    if (count_decode_error) {
      ++stats_.decode_errors;
    } else {
      ++stats_.protocol_errors;
    }
  }
  if (count_decode_error) telemetry::add(decode_errors_metric());
  conn.reading_paused = true;
  conn.pending.clear();
  if (!conn.close_after_flush) {
    enqueue_frame(conn,
                  encode(ErrorFrame{.code = code, .message = std::move(message)}));
    conn.close_after_flush = true;
  }
}

void StreamServer::write_ready(Connection& conn) {
  while (!conn.outbound.empty()) {
    const std::vector<std::uint8_t>& chunk = conn.outbound.front();
    const std::size_t remaining = chunk.size() - conn.outbound_head;
    const ssize_t n = ::send(conn.fd, chunk.data() + conn.outbound_head,
                             remaining, MSG_NOSIGNAL);
    if (n > 0) {
      {
        runtime::MutexLock guard(stats_mutex_);
        stats_.bytes_out += static_cast<std::uint64_t>(n);
      }
      conn.outbound_head += static_cast<std::size_t>(n);
      conn.outbound_bytes -= static_cast<std::size_t>(n);
      if (conn.outbound_head == chunk.size()) {
        conn.outbound.pop_front();
        conn.outbound_head = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return;
    }
    close_connection(conn);
    return;
  }
}

void StreamServer::close_connection(Connection& conn) {
  if (conn.session) {
    const std::uint64_t now = telemetry::now_ns();
    const bool finished =
        conn.session->frames_processed() >=
        static_cast<std::uint64_t>(conn.session->spec().horizon_steps);
    // "Finished" means the pipeline ran every step — not that the client
    // received every estimate. The connection may have died with the tail
    // of the stream undelivered, so a finished session is only destroyed
    // once the client has ACKed its final step; otherwise it detaches like
    // a mid-stream disconnect and stays resumable for the replay.
    const bool delivered =
        finished && conn.session->acked_through() + 1 >=
                        conn.session->spec().horizon_steps;
    // detach() is a no-op for tokens the manager already dropped (idle
    // eviction), so this never revives an evicted session.
    if (draining_ || delivered ||
        !sessions_.detach(conn.session->token(), now)) {
      sessions_.close(conn.session->token(), now);
    }
  }
  if (conn.fd >= 0) ::close(conn.fd);
  {
    runtime::MutexLock guard(stats_mutex_);
    ++stats_.closed;
  }
  connections_.erase(conn.id);  // invalidates conn
}

void StreamServer::evict_idle_sessions() {
  const std::uint64_t now = telemetry::now_ns();
  if (now - last_idle_check_ns_ < options_.idle_check_period_ns) return;
  last_idle_check_ns_ = now;
  sessions_.expire_detached(now);
  const std::vector<SessionManager::Evicted> evicted =
      sessions_.evict_idle(now);
  if (evicted.empty()) return;
  for (const SessionManager::Evicted& gone : evicted) {
    for (auto& [id, conn] : connections_) {
      if (conn->session && conn->session->token() == gone.token &&
          !conn->close_after_flush) {
        conn->reading_paused = true;
        conn->pending.clear();
        enqueue_frame(*conn, encode(StatusFrame{
                                 .code = StatusCode::kIdleTimeout,
                                 .session_token = gone.token,
                                 .message = "session evicted after idle "
                                            "timeout",
                             }));
        conn->close_after_flush = true;
        break;
      }
    }
  }
}

}  // namespace safe::serve
