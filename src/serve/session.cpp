#include "serve/session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "detect/spec.hpp"
#include "runtime/seed.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::serve {

namespace {

// Session lifecycle observability (DESIGN.md §12). Open/close/evict counts
// are deterministic for a given workload; session lifetimes are wall-clock.
const telemetry::MetricId& sessions_opened_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.sessions_opened", telemetry::Stability::kDeterministic);
  return id;
}

const telemetry::MetricId& sessions_rejected_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.sessions_rejected", telemetry::Stability::kDeterministic);
  return id;
}

const telemetry::MetricId& sessions_evicted_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.sessions_evicted", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& session_frames_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.session_frames", telemetry::Stability::kDeterministic);
  return id;
}

const telemetry::MetricId& session_lifetime_metric() {
  static const telemetry::MetricId id =
      telemetry::duration_histogram("serve.session_ns");
  return id;
}

const telemetry::MetricId& sessions_detached_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.sessions_detached", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& sessions_resumed_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.sessions_resumed", telemetry::Stability::kSchedulingDependent);
  return id;
}

const telemetry::MetricId& sessions_expired_metric() {
  static const telemetry::MetricId id = telemetry::counter(
      "serve.sessions_resume_expired",
      telemetry::Stability::kSchedulingDependent);
  return id;
}

}  // namespace

Session::Session(std::uint64_t token, std::string client_id,
                 const TraceSpec& spec, std::uint64_t now_ns,
                 std::size_t max_retained_steps)
    : token_(token),
      client_id_(std::move(client_id)),
      spec_(spec),
      opened_ns_(now_ns),
      max_retained_steps_(max_retained_steps),
      pipeline_(build_session_pipeline(spec)),
      last_active_ns_(now_ns) {}

Session::StepOutput Session::process(const MeasurementFrame& frame,
                                     std::uint64_t now_ns) {
  runtime::MutexLock guard(mutex_);
  last_active_ns_.store(now_ns, std::memory_order_relaxed);
  frames_.fetch_add(1, std::memory_order_relaxed);
  telemetry::add(session_frames_metric());

  StepOutput out;
  out.estimate.step = frame.step;
  out.estimate.safe = pipeline_.process(frame.step, frame.measurement);
  if (out.estimate.safe.challenge_slot) {
    out.challenge = ChallengeResultFrame{
        .step = frame.step,
        .silent = !frame.measurement.nonzero_output(),
        .under_attack = out.estimate.safe.under_attack,
    };
  }
  last_step_.store(frame.step, std::memory_order_release);
  return out;
}

void Session::record_step_output(std::int64_t step,
                                 std::vector<std::uint8_t> bytes,
                                 std::uint64_t frame_count) {
  runtime::MutexLock guard(mutex_);
  retained_.push_back(
      Retained{.step = step, .bytes = std::move(bytes), .frames = frame_count});
  while (retained_.size() > max_retained_steps_) {
    trimmed_through_ = std::max(trimmed_through_, retained_.front().step);
    retained_.pop_front();
  }
}

void Session::ack(std::int64_t last_step) {
  runtime::MutexLock guard(mutex_);
  while (!retained_.empty() && retained_.front().step <= last_step) {
    trimmed_through_ = std::max(trimmed_through_, retained_.front().step);
    retained_.pop_front();
  }
  if (last_step > acked_through_.load(std::memory_order_relaxed)) {
    acked_through_.store(last_step, std::memory_order_release);
  }
}

Session::Replay Session::collect_replay(std::int64_t last_step) {
  runtime::MutexLock guard(mutex_);
  Replay replay;
  if (last_step < trimmed_through_) {
    // Steps in (last_step, trimmed_through_] were already dropped — the
    // client would see a hole in its estimate stream.
    replay.gap = true;
    return replay;
  }
  for (const Retained& r : retained_) {
    if (r.step <= last_step) continue;
    replay.bytes.insert(replay.bytes.end(), r.bytes.begin(), r.bytes.end());
    replay.frames += r.frames;
  }
  return replay;
}

SessionManager::SessionManager(SessionLimits limits, std::uint64_t master_seed)
    : limits_(limits), master_seed_(master_seed) {}

SessionManager::OpenResult SessionManager::open(const HelloFrame& hello,
                                                std::uint64_t now_ns) {
  OpenResult result;
  const auto rejected = [&](ErrorCode code, std::string message) {
    runtime::MutexLock guard(mutex_);
    ++counters_.rejected;
    telemetry::add(sessions_rejected_metric());
    result.error_code = code;
    result.error = std::move(message);
    return result;
  };

  // Older clients stay accepted: a v1/v2 HELLO decodes with detector_spec
  // empty, which selects the paper CRA detector — the only behaviour those
  // versions could express.
  if (hello.protocol_version < 1 ||
      hello.protocol_version > kProtocolVersion) {
    return rejected(ErrorCode::kUnsupportedVersion,
                    "protocol version " +
                        std::to_string(hello.protocol_version) +
                        " unsupported (server speaks " +
                        std::to_string(kProtocolVersion) + ")");
  }
  if (hello.horizon_steps <= 0 ||
      hello.horizon_steps > limits_.max_horizon_steps) {
    return rejected(ErrorCode::kProtocolOrder,
                    "horizon_steps " + std::to_string(hello.horizon_steps) +
                        " outside [1, " +
                        std::to_string(limits_.max_horizon_steps) + "]");
  }
  if (!std::isfinite(hello.attack_start_s.value()) ||
      !std::isfinite(hello.attack_end_s.value())) {
    return rejected(ErrorCode::kProtocolOrder,
                    "attack window bounds must be finite");
  }
  // Validate the detector spec up front so a bad one is a structured reject,
  // never a silent fall-back to the default backend.
  {
    const detect::SpecCheck check =
        detect::check_detector_spec(hello.detector_spec);
    if (check.status == detect::SpecStatus::kUnknownBackend) {
      return rejected(ErrorCode::kUnknownDetector, check.message);
    }
    if (check.status != detect::SpecStatus::kOk) {
      return rejected(ErrorCode::kProtocolOrder, check.message);
    }
  }

  // Derive the token and claim a slot before the (comparatively heavy)
  // pipeline construction, so two racing HELLOs cannot both pass the cap.
  std::uint64_t token = 0;
  {
    runtime::MutexLock guard(mutex_);
    if (sessions_.size() >= limits_.max_sessions) {
      ++counters_.rejected;
      telemetry::add(sessions_rejected_metric());
      result.error_code = ErrorCode::kSessionLimit;
      result.error = "session cap reached (" +
                     std::to_string(limits_.max_sessions) + " live sessions)";
      return result;
    }
    // Token 0 is the "no session" sentinel on the wire; the derivation can
    // hit it only with probability 2^-64 per counter, but skip it anyway so
    // the sentinel stays unambiguous.
    do {
      token = runtime::derive_seed(master_seed_,
                                   runtime::SeedStream::kSession,
                                   next_session_counter_++);
    } while (token == 0 || sessions_.count(token) != 0 ||
             detached_.count(token) != 0);
    sessions_.emplace(token, nullptr);  // placeholder claims the slot
  }

  SessionPtr session;
  try {
    session = std::make_shared<Session>(token, hello.client_id,
                                        spec_from(hello), now_ns,
                                        limits_.max_retained_steps);
  } catch (const std::exception& e) {
    runtime::MutexLock guard(mutex_);
    sessions_.erase(token);
    ++counters_.rejected;
    telemetry::add(sessions_rejected_metric());
    result.error_code = ErrorCode::kInternal;
    result.error = std::string("session setup failed: ") + e.what();
    return result;
  }

  {
    runtime::MutexLock guard(mutex_);
    sessions_[token] = session;
    ++counters_.opened;
  }
  telemetry::add(sessions_opened_metric());
  telemetry::instant_event("serve.session_open", "serve");
  result.session = std::move(session);
  return result;
}

SessionPtr SessionManager::find(std::uint64_t token) {
  runtime::MutexLock guard(mutex_);
  const auto it = sessions_.find(token);
  return it == sessions_.end() ? nullptr : it->second;
}

void SessionManager::record_session_end(const Session& session,
                                        std::uint64_t now_ns) const {
  telemetry::record(session_lifetime_metric(),
                    static_cast<double>(now_ns - session.opened_ns()));
  telemetry::instant_event("serve.session_close", "serve");
}

bool SessionManager::close(std::uint64_t token, std::uint64_t now_ns) {
  SessionPtr session;
  {
    runtime::MutexLock guard(mutex_);
    const auto it = sessions_.find(token);
    if (it != sessions_.end()) {
      session = std::move(it->second);
      sessions_.erase(it);
      ++counters_.closed;
    } else {
      const auto detached = detached_.find(token);
      if (detached == detached_.end()) return false;
      session = std::move(detached->second.session);
      detached_.erase(detached);
      ++counters_.closed;
    }
  }
  if (session) record_session_end(*session, now_ns);
  return true;
}

bool SessionManager::detach(std::uint64_t token, std::uint64_t now_ns) {
  SessionPtr dropped;  // destroyed outside the lock
  {
    runtime::MutexLock guard(mutex_);
    const auto it = sessions_.find(token);
    if (it == sessions_.end() || !it->second) return false;
    SessionPtr session = std::move(it->second);
    sessions_.erase(it);
    session->touch(now_ns);
    detached_[token] =
        Detached{.session = std::move(session), .detached_ns = now_ns};
    ++counters_.detached;
    if (detached_.size() > limits_.max_detached_sessions) {
      auto oldest = detached_.begin();
      for (auto dit = detached_.begin(); dit != detached_.end(); ++dit) {
        if (dit->second.detached_ns < oldest->second.detached_ns) oldest = dit;
      }
      dropped = std::move(oldest->second.session);
      detached_.erase(oldest);
      ++counters_.expired;
    }
  }
  telemetry::add(sessions_detached_metric());
  if (dropped) {
    telemetry::add(sessions_expired_metric());
    record_session_end(*dropped, now_ns);
  }
  return true;
}

SessionManager::ResumeResult SessionManager::resume(std::uint64_t token,
                                                    std::uint64_t now_ns) {
  ResumeResult result;
  {
    runtime::MutexLock guard(mutex_);
    const auto it = detached_.find(token);
    if (it == detached_.end()) {
      result.status = ResumeStatus::kUnknown;
      ++counters_.resume_rejected;
      return result;
    }
    if (it->second.session->batch_in_flight()) {
      // The dispatched batch is still appending to the replay window; a
      // resume now would compute a stale next_step. Retryable.
      result.status = ResumeStatus::kBusy;
      ++counters_.resume_rejected;
      return result;
    }
    if (sessions_.size() >= limits_.max_sessions) {
      result.status = ResumeStatus::kCapacity;
      ++counters_.resume_rejected;
      return result;
    }
    result.session = std::move(it->second.session);
    detached_.erase(it);
    result.session->touch(now_ns);
    sessions_[token] = result.session;
    result.status = ResumeStatus::kOk;
    ++counters_.resumed;
  }
  telemetry::add(sessions_resumed_metric());
  return result;
}

std::size_t SessionManager::expire_detached(std::uint64_t now_ns) {
  std::vector<SessionPtr> dead;
  {
    runtime::MutexLock guard(mutex_);
    for (auto it = detached_.begin(); it != detached_.end();) {
      if (now_ns - it->second.detached_ns > limits_.resume_grace_ns) {
        dead.push_back(std::move(it->second.session));
        it = detached_.erase(it);
        ++counters_.expired;
      } else {
        ++it;
      }
    }
  }
  for (const SessionPtr& session : dead) {
    telemetry::add(sessions_expired_metric());
    record_session_end(*session, now_ns);
  }
  return dead.size();
}

std::vector<SessionManager::Evicted> SessionManager::evict_idle(
    std::uint64_t now_ns) {
  std::vector<Evicted> evicted;
  std::vector<SessionPtr> dead;
  {
    runtime::MutexLock guard(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      const SessionPtr& session = it->second;
      // Placeholder slots (HELLO mid-construction) are never idle.
      if (session &&
          now_ns - session->last_active_ns() > limits_.idle_timeout_ns) {
        evicted.push_back(Evicted{.token = session->token(),
                                  .client_id = session->client_id()});
        dead.push_back(session);
        it = sessions_.erase(it);
        ++counters_.evicted;
      } else {
        ++it;
      }
    }
  }
  for (const SessionPtr& session : dead) {
    telemetry::add(sessions_evicted_metric());
    record_session_end(*session, now_ns);
  }
  return evicted;
}

std::size_t SessionManager::size() const {
  runtime::MutexLock guard(mutex_);
  return sessions_.size();
}

std::size_t SessionManager::detached_size() const {
  runtime::MutexLock guard(mutex_);
  return detached_.size();
}

SessionManager::Counters SessionManager::counters() const {
  runtime::MutexLock guard(mutex_);
  return counters_;
}

}  // namespace safe::serve
