// Per-session pipeline state for the streaming server (DESIGN.md §12).
//
// A session is one client's safe-sensing pipeline: the CRA detector,
// HealthMonitor, and RLS predictors that consume its measurement stream.
// The SessionManager owns every live session, enforces a hard cap, evicts
// sessions idle past a timeout, and hands out deterministic session tokens
// derived with the campaign engine's SplitMix64 scheme —
// derive_seed(master, SeedStream::kSession, counter) — so a given server
// seed always produces the same token sequence (tests pin this).
//
// Eviction destroys the session object outright. A client that reconnects
// with the same client id gets a freshly constructed pipeline: no predictor
// state, detector state, or health state survives eviction (tested).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/trace_source.hpp"
#include "serve/wire.hpp"

namespace safe::serve {

struct SessionLimits {
  /// Hard cap on live sessions; a HELLO beyond it is rejected with
  /// ErrorCode::kSessionLimit.
  std::size_t max_sessions = 64;
  /// A session with no processed frame for this long is evicted.
  std::uint64_t idle_timeout_ns = 30'000'000'000ULL;
  /// Upper bound on a HELLO's horizon (bounds the challenge-schedule
  /// precompute a client can demand).
  std::int64_t max_horizon_steps = 100'000;
};

/// One client session. process() is internally serialized; connections
/// already submit one batch at a time, the mutex additionally makes the
/// manager's concurrent bookkeeping safe.
class Session {
 public:
  Session(std::uint64_t token, std::string client_id, const TraceSpec& spec,
          std::uint64_t now_ns);

  struct StepOutput {
    EstimateFrame estimate;
    std::optional<ChallengeResultFrame> challenge;
  };

  /// Runs one measurement through the pipeline. Pure function of the
  /// measurement sequence — serving a stream must match run_offline()
  /// byte for byte.
  StepOutput process(const MeasurementFrame& frame, std::uint64_t now_ns);

  [[nodiscard]] std::uint64_t token() const noexcept { return token_; }
  [[nodiscard]] const std::string& client_id() const noexcept {
    return client_id_;
  }
  [[nodiscard]] const TraceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t frames_processed() const noexcept {
    return frames_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t last_active_ns() const noexcept {
    return last_active_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t opened_ns() const noexcept { return opened_ns_; }

 private:
  const std::uint64_t token_;
  const std::string client_id_;
  const TraceSpec spec_;
  const std::uint64_t opened_ns_;
  std::mutex mutex_;
  core::SafeMeasurementPipeline pipeline_;
  std::atomic<std::uint64_t> last_active_ns_;
  std::atomic<std::uint64_t> frames_{0};
};

using SessionPtr = std::shared_ptr<Session>;

class SessionManager {
 public:
  SessionManager(SessionLimits limits, std::uint64_t master_seed);

  /// Result of a HELLO. On rejection `session` is null and
  /// `error_code`/`error` say why (ready to be sent as an ERROR frame).
  struct OpenResult {
    SessionPtr session;
    ErrorCode error_code = ErrorCode::kInternal;
    std::string error;
  };

  OpenResult open(const HelloFrame& hello, std::uint64_t now_ns);

  /// Live session by token; null when unknown (closed or evicted).
  [[nodiscard]] SessionPtr find(std::uint64_t token);

  /// Removes a session (connection closed). False when already gone.
  bool close(std::uint64_t token, std::uint64_t now_ns);

  struct Evicted {
    std::uint64_t token = 0;
    std::string client_id;
  };

  /// Evicts every session idle past the timeout; returns what was evicted
  /// so the server can notify and close the attached connections.
  std::vector<Evicted> evict_idle(std::uint64_t now_ns);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const SessionLimits& limits() const noexcept {
    return limits_;
  }

  struct Counters {
    std::uint64_t opened = 0;
    std::uint64_t rejected = 0;
    std::uint64_t evicted = 0;
    std::uint64_t closed = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  void record_session_end(const Session& session, std::uint64_t now_ns) const;

  const SessionLimits limits_;
  const std::uint64_t master_seed_;
  mutable std::mutex mutex_;
  std::uint64_t next_session_counter_ = 0;
  std::unordered_map<std::uint64_t, SessionPtr> sessions_;
  Counters counters_;
};

}  // namespace safe::serve
