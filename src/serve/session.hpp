// Per-session pipeline state for the streaming server (DESIGN.md §12).
//
// A session is one client's safe-sensing pipeline: the CRA detector,
// HealthMonitor, and RLS predictors that consume its measurement stream.
// The SessionManager owns every live session, enforces a hard cap, evicts
// sessions idle past a timeout, and hands out deterministic session tokens
// derived with the campaign engine's SplitMix64 scheme —
// derive_seed(master, SeedStream::kSession, counter) — so a given server
// seed always produces the same token sequence (tests pin this).
//
// Eviction destroys the session object outright. A client that reconnects
// with the same client id gets a freshly constructed pipeline: no predictor
// state, detector state, or health state survives eviction (tested).
//
// Resumption (DESIGN.md §13): when a connection drops mid-stream, the server
// detaches the session into a bounded cache instead of destroying it. A
// RESUME(token, last_step) within the grace window re-attaches it and
// replays every retained output frame after last_step, so the byte-parity
// contract survives disconnects. Retained output is trimmed by client ACKs
// and capped; a resume behind the trimmed window fails with kResumeGap.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "runtime/sync.hpp"
#include "serve/trace_source.hpp"
#include "serve/wire.hpp"

namespace safe::serve {

struct SessionLimits {
  /// Hard cap on live sessions; a HELLO beyond it is rejected with
  /// ErrorCode::kSessionLimit.
  std::size_t max_sessions = 64;
  /// A session with no processed frame for this long is evicted.
  std::uint64_t idle_timeout_ns = 30'000'000'000ULL;
  /// Upper bound on a HELLO's horizon (bounds the challenge-schedule
  /// precompute a client can demand).
  std::int64_t max_horizon_steps = 100'000;
  /// How long a detached (disconnected mid-stream) session stays resumable.
  std::uint64_t resume_grace_ns = 15'000'000'000ULL;
  /// Cap on detached sessions kept resumable; the oldest is dropped first.
  std::size_t max_detached_sessions = 256;
  /// Per-session cap on retained output steps awaiting client ACK. Overflow
  /// drops the oldest step, so a resume behind the window gets kResumeGap.
  std::size_t max_retained_steps = 4096;
};

/// One client session. process() is internally serialized; connections
/// already submit one batch at a time, the mutex additionally makes the
/// manager's concurrent bookkeeping safe.
class Session {
 public:
  Session(std::uint64_t token, std::string client_id, const TraceSpec& spec,
          std::uint64_t now_ns, std::size_t max_retained_steps = 4096);

  struct StepOutput {
    EstimateFrame estimate;
    std::optional<ChallengeResultFrame> challenge;
  };

  /// Runs one measurement through the pipeline. Pure function of the
  /// measurement sequence — serving a stream must match run_offline()
  /// byte for byte.
  StepOutput process(const MeasurementFrame& frame, std::uint64_t now_ns);

  [[nodiscard]] std::uint64_t token() const noexcept { return token_; }
  [[nodiscard]] const std::string& client_id() const noexcept {
    return client_id_;
  }
  [[nodiscard]] const TraceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t frames_processed() const noexcept {
    return frames_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t last_active_ns() const noexcept {
    return last_active_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t opened_ns() const noexcept { return opened_ns_; }

  // --- resumption support ---------------------------------------------------

  /// Retains the encoded wire output for one processed step so it can be
  /// replayed on resume. Called by the worker after process()+encode, in
  /// step order. Overflow past the retain cap drops the oldest step.
  void record_step_output(std::int64_t step, std::vector<std::uint8_t> bytes,
                          std::uint64_t frame_count);

  /// Client acknowledgement: retained steps <= last_step are dropped.
  void ack(std::int64_t last_step);

  /// Highest step the client has explicitly ACKed (-1 before the first).
  /// Distinct from the trim watermark, which also advances on cap overflow:
  /// only an ACK proves the client actually received the frames, so only
  /// this decides when a finished session no longer needs to be resumable.
  [[nodiscard]] std::int64_t acked_through() const noexcept {
    return acked_through_.load(std::memory_order_acquire);
  }

  struct Replay {
    std::vector<std::uint8_t> bytes;  ///< retained frames after last_step
    std::uint64_t frames = 0;
    bool gap = false;  ///< frames the client needs were already dropped
  };

  /// Everything retained after `last_step`, concatenated in step order.
  /// `gap` is set when the retain window no longer reaches back that far.
  [[nodiscard]] Replay collect_replay(std::int64_t last_step);

  /// Highest step run through the pipeline (-1 before the first).
  [[nodiscard]] std::int64_t last_processed_step() const noexcept {
    return last_step_.load(std::memory_order_acquire);
  }

  /// A worker batch is between dispatch and completion; a session cannot be
  /// resumed while one is in flight (its replay window is still moving).
  void batch_begin() noexcept {
    batch_in_flight_.store(true, std::memory_order_release);
  }
  void batch_end() noexcept {
    batch_in_flight_.store(false, std::memory_order_release);
  }
  [[nodiscard]] bool batch_in_flight() const noexcept {
    return batch_in_flight_.load(std::memory_order_acquire);
  }

  /// Refreshes the idle clock (a detached session awaiting resume must not
  /// look idle to the eviction sweep).
  void touch(std::uint64_t now_ns) noexcept {
    last_active_ns_.store(now_ns, std::memory_order_relaxed);
  }

 private:
  struct Retained {
    std::int64_t step = 0;
    std::vector<std::uint8_t> bytes;
    std::uint64_t frames = 0;
  };

  const std::uint64_t token_;
  const std::string client_id_;
  const TraceSpec spec_;
  const std::uint64_t opened_ns_;
  const std::size_t max_retained_steps_;
  runtime::Mutex mutex_;
  core::SafeMeasurementPipeline pipeline_ SAFE_GUARDED_BY(mutex_);
  std::deque<Retained> retained_ SAFE_GUARDED_BY(mutex_);
  /// Highest step already dropped from retained_ (ACK trim or cap overflow).
  std::int64_t trimmed_through_ SAFE_GUARDED_BY(mutex_) = -1;
  std::atomic<std::uint64_t> last_active_ns_;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::int64_t> last_step_{-1};
  std::atomic<std::int64_t> acked_through_{-1};
  std::atomic<bool> batch_in_flight_{false};
};

using SessionPtr = std::shared_ptr<Session>;

class SessionManager {
 public:
  SessionManager(SessionLimits limits, std::uint64_t master_seed);

  /// Result of a HELLO. On rejection `session` is null and
  /// `error_code`/`error` say why (ready to be sent as an ERROR frame).
  struct OpenResult {
    SessionPtr session;
    ErrorCode error_code = ErrorCode::kInternal;
    std::string error;
  };

  OpenResult open(const HelloFrame& hello, std::uint64_t now_ns);

  /// Live session by token; null when unknown (closed or evicted).
  [[nodiscard]] SessionPtr find(std::uint64_t token);

  /// Removes a session (connection closed). False when already gone.
  bool close(std::uint64_t token, std::uint64_t now_ns);

  /// Moves a live session into the bounded detached cache, keeping it
  /// resumable for the grace window. Beyond the cap the oldest detached
  /// session is destroyed. False when the token is not live.
  bool detach(std::uint64_t token, std::uint64_t now_ns);

  enum class ResumeStatus : std::uint8_t {
    kOk,        ///< session moved back to the live map
    kUnknown,   ///< token not detached (never existed, expired, finished)
    kBusy,      ///< a worker batch is still in flight; retry after backoff
    kCapacity,  ///< live-session cap reached; retry after backoff
  };

  struct ResumeResult {
    SessionPtr session;
    ResumeStatus status = ResumeStatus::kUnknown;
  };

  /// Re-attaches a detached session by token.
  ResumeResult resume(std::uint64_t token, std::uint64_t now_ns);

  /// Destroys detached sessions past the resume grace window; returns how
  /// many expired.
  std::size_t expire_detached(std::uint64_t now_ns);

  struct Evicted {
    std::uint64_t token = 0;
    std::string client_id;
  };

  /// Evicts every session idle past the timeout; returns what was evicted
  /// so the server can notify and close the attached connections.
  std::vector<Evicted> evict_idle(std::uint64_t now_ns);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t detached_size() const;
  [[nodiscard]] const SessionLimits& limits() const noexcept {
    return limits_;
  }

  struct Counters {
    std::uint64_t opened = 0;
    std::uint64_t rejected = 0;
    std::uint64_t evicted = 0;
    std::uint64_t closed = 0;
    std::uint64_t detached = 0;
    std::uint64_t resumed = 0;
    std::uint64_t resume_rejected = 0;
    std::uint64_t expired = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Detached {
    SessionPtr session;
    std::uint64_t detached_ns = 0;
  };

  void record_session_end(const Session& session, std::uint64_t now_ns) const;

#ifdef SAFE_SENSING_TS_NEGATIVE_TEST
  // Hooks for tests/compile_fail/ts_*.cpp only (see ThreadPool): defined by
  // the test TU to prove a GUARDED_BY violation against the session maps is
  // a build break under -Werror=thread-safety.
  std::size_t ts_probe_sessions_unlocked();
  std::size_t ts_probe_sessions_locked();
#endif

  const SessionLimits limits_;
  const std::uint64_t master_seed_;
  /// One mutex covers the live map, the detached cache, the token counter,
  /// and the counters: session open/close/detach/resume transitions must be
  /// atomic across the two maps (a token may never be in both).
  mutable runtime::Mutex mutex_;
  std::uint64_t next_session_counter_ SAFE_GUARDED_BY(mutex_) = 0;
  std::unordered_map<std::uint64_t, SessionPtr> sessions_
      SAFE_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, Detached> detached_
      SAFE_GUARDED_BY(mutex_);
  Counters counters_ SAFE_GUARDED_BY(mutex_);
};

}  // namespace safe::serve
