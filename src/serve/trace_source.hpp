// Measurement-trace generation and the offline parity reference.
//
// The serving layer moves radar epochs over a wire instead of a function
// call, and its core contract is that the move is invisible: for a given
// TraceSpec, the ESTIMATE frames a server session emits must be
// byte-identical to running core::SafeMeasurementPipeline over the same
// measurements in-process. Both sides of that contract live here:
//
//   * make_measurement_trace() synthesizes the deterministic open-loop
//     radar stream a client replays (leader profile + mirrored follower,
//     paper link budget, CRA probe gating, scheduled attack, optional
//     fault schedule — the same chain as core::CarFollowingSimulation
//     minus the controller feedback);
//   * run_offline() is the in-process reference: the exact pipeline a
//     server session builds, fed the exact frames it would receive.
//
// The load generator, the loopback tests, and the CI smoke all verify
// serving output against run_offline().
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/scenario.hpp"
#include "serve/wire.hpp"

namespace safe::serve {

/// Everything that determines a session's measurement stream and pipeline.
/// Mirrors the HELLO frame minus transport concerns (version, client id).
struct TraceSpec {
  core::LeaderScenario leader = core::LeaderScenario::kConstantDecel;
  core::AttackKind attack = core::AttackKind::kNone;
  units::Seconds attack_start_s{182.0};
  units::Seconds attack_end_s{300.0};
  /// Periodogram by default: serving traffic values throughput, and the
  /// paper's root-MUSIC is ~20x slower for nearly identical behaviour.
  radar::BeatEstimator estimator = radar::BeatEstimator::kPeriodogram;
  bool hardened = false;  ///< hardened_pipeline_options() vs paper defaults
  std::uint64_t seed = 1;
  std::int64_t horizon_steps = 300;
  std::string fault_spec;  ///< applied client-side, between radar and wire
  /// Detection backend (detect mini-language). Empty = paper CRA.
  std::string detector_spec;
};

[[nodiscard]] TraceSpec spec_from(const HelloFrame& hello);
[[nodiscard]] HelloFrame hello_from(const TraceSpec& spec,
                                    std::string client_id);

/// The pipeline options a session runs under (paper defaults or hardened).
[[nodiscard]] core::PipelineOptions pipeline_options_for(const TraceSpec& spec);

/// Builds the per-session pipeline: paper challenge schedule over the spec's
/// horizon, RLS-AR predictors on both channels. Used by the SessionManager
/// and by run_offline(), which is what makes the parity contract exact.
/// Throws std::invalid_argument on a non-positive horizon.
[[nodiscard]] core::SafeMeasurementPipeline build_session_pipeline(
    const TraceSpec& spec);

/// Synthesizes the spec's measurement stream: one RadarMeasurement per step,
/// deterministic in the spec (seed included). The follower mirrors the
/// leader's acceleration profile, so the true gap holds at the paper's
/// initial 100 m and every dynamic in the stream comes from noise, the
/// attack window, and the fault schedule. Throws std::invalid_argument on
/// invalid scenario options or a malformed fault spec.
[[nodiscard]] std::vector<MeasurementFrame> make_measurement_trace(
    const TraceSpec& spec);

/// The offline reference: runs the exact pipeline build_session_pipeline()
/// returns over `measurements`, in order, producing the ESTIMATE frames a
/// clean server session must match byte for byte.
[[nodiscard]] std::vector<EstimateFrame> run_offline(
    const TraceSpec& spec, const std::vector<MeasurementFrame>& measurements);

}  // namespace safe::serve
