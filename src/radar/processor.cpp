#include "radar/processor.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/music.hpp"
#include "dsp/spectral.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::radar {

namespace {

// Receiver-stage metrics: one epoch per measure() call (synthesize +
// demodulate + estimate). Counts are jobs-invariant; the duration histogram
// is the per-stage profile the fine trace detail exposes as spans.
struct ProcessorMetrics {
  telemetry::MetricId epochs = telemetry::counter("radar.epochs");
  telemetry::MetricId coherent_echoes =
      telemetry::counter("radar.coherent_echoes");
  telemetry::MetricId power_alarms = telemetry::counter("radar.power_alarms");
  telemetry::MetricId measure_ns =
      telemetry::duration_histogram("radar.measure_ns");
};

const ProcessorMetrics& processor_metrics() {
  static const ProcessorMetrics m;
  return m;
}

}  // namespace

using dsp::Complex;
using dsp::ComplexSignal;

RadarProcessor::RadarProcessor(RadarProcessorConfig config, std::uint64_t seed)
    : config_(std::move(config)), noise_(0.0, 1.0, seed) {
  validate_parameters(config_.waveform);
  if (config_.sample_rate_hz <= Hertz{0.0}) {
    throw std::invalid_argument("RadarProcessor: sample rate must be > 0");
  }
  if (config_.samples_per_segment < 2 * config_.music_order) {
    throw std::invalid_argument(
        "RadarProcessor: segment too short for the MUSIC covariance order");
  }
  const double segment_duration =
      static_cast<double>(config_.samples_per_segment) /
      config_.sample_rate_hz.value();
  if (segment_duration > config_.waveform.sweep_time_s.value() / 2.0) {
    throw std::invalid_argument(
        "RadarProcessor: segment longer than a half sweep");
  }
}

RadarProcessor::Segments RadarProcessor::synthesize(const EchoScene& scene) {
  const std::size_t n = config_.samples_per_segment;
  Segments seg{ComplexSignal(n), ComplexSignal(n)};

  // Incoherent noise: complex AWGN with total power scene.noise_power_w.
  const double sigma_per_axis = std::sqrt(std::max(scene.noise_power_w, 0.0) / 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    seg.up[i] = Complex{sigma_per_axis * noise_.sample(),
                        sigma_per_axis * noise_.sample()};
    seg.down[i] = Complex{sigma_per_axis * noise_.sample(),
                          sigma_per_axis * noise_.sample()};
  }

  // Coherent echoes: one complex tone per component in each segment.
  for (const EchoComponent& echo : scene.echoes) {
    const BeatFrequencies beats = beat_frequencies(
        config_.waveform, echo.distance_m, echo.range_rate_mps);
    const double amplitude = std::sqrt(std::max(echo.power_w, 0.0));
    // Deterministic pseudo-random starting phases from the noise stream.
    const double phase_up = 2.0 * std::numbers::pi * 0.5 *
                            (1.0 + std::tanh(noise_.sample()));
    const double phase_down = 2.0 * std::numbers::pi * 0.5 *
                              (1.0 + std::tanh(noise_.sample()));
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / config_.sample_rate_hz.value();
      seg.up[i] += std::polar(
          amplitude,
          2.0 * std::numbers::pi * beats.up_hz.value() * t + phase_up);
      seg.down[i] += std::polar(
          amplitude,
          2.0 * std::numbers::pi * beats.down_hz.value() * t + phase_down);
    }
  }
  return seg;
}

double RadarProcessor::estimate_beat_hz(const ComplexSignal& segment,
                                        std::size_t num_components) const {
  if (config_.estimator == BeatEstimator::kPeriodogram) {
    const auto tone =
        dsp::estimate_dominant_tone(segment, config_.sample_rate_hz.value());
    return tone ? tone->frequency_hz : 0.0;
  }
  const dsp::MusicOptions options{.covariance_order = config_.music_order,
                                  .forward_backward = true};
  const auto candidates = dsp::root_music_frequencies(
      segment, config_.sample_rate_hz.value(),
      std::max<std::size_t>(num_components, 1), options);
  if (candidates.empty()) return 0.0;
  // Rank candidates by coherent power: the receiver locks to the strongest.
  double best_freq = candidates.front();
  double best_power = -1.0;
  for (const double f : candidates) {
    const double p = dsp::tone_power(segment, f, config_.sample_rate_hz.value());
    if (p > best_power) {
      best_power = p;
      best_freq = f;
    }
  }
  return best_freq;
}

RadarMeasurement RadarProcessor::measure(const EchoScene& scene) {
  const ProcessorMetrics& metrics = processor_metrics();
  telemetry::ScopedTimer span("radar.measure", "radar", metrics.measure_ns,
                              telemetry::TraceDetail::kFine);
  telemetry::add(metrics.epochs);

  const Segments seg = synthesize(scene);

  RadarMeasurement m;
  m.rx_power_w = 0.5 * (dsp::mean_power(seg.up) + dsp::mean_power(seg.down));
  m.peak_to_average = dsp::peak_to_average_power(seg.up);
  m.coherent_echo = m.peak_to_average > config_.coherence_threshold;
  m.power_alarm =
      m.rx_power_w > config_.power_alarm_factor * config_.noise_floor_w;
  if (m.coherent_echo) telemetry::add(metrics.coherent_echoes);
  if (m.power_alarm) telemetry::add(metrics.power_alarms);

  // Estimate beats even when no coherent echo stands out: under jamming the
  // receiver still produces (corrupted) measurements, which is precisely the
  // failure mode of Figures 2a/3a.
  const std::size_t components = std::max<std::size_t>(scene.echoes.size(), 1);
  m.beats.up_hz = Hertz{estimate_beat_hz(seg.up, components)};
  m.beats.down_hz = Hertz{estimate_beat_hz(seg.down, components)};
  m.estimate = range_rate_from_beats(config_.waveform, m.beats);
  return m;
}

}  // namespace safe::radar
