#include "radar/tracker.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace safe::radar {

namespace units = safe::units;

RangeTracker::RangeTracker(const TrackerOptions& options) : options_(options) {
  if (options_.sample_time_s <= Seconds{0.0} || options_.gate_m <= Meters{0.0}) {
    throw std::invalid_argument("RangeTracker: bad sample time / gate");
  }
  if (options_.alpha <= 0.0 || options_.alpha > 1.0 || options_.beta < 0.0 ||
      options_.beta > 1.0) {
    throw std::invalid_argument("RangeTracker: gains out of range");
  }
  if (options_.confirm_hits == 0 || options_.drop_misses == 0) {
    throw std::invalid_argument("RangeTracker: bad confirm/drop counts");
  }
}

const std::vector<Track>& RangeTracker::update(
    const std::vector<RangeRate>& detections) {
  const Seconds t = options_.sample_time_s;

  // Predict.
  for (Track& track : tracks_) {
    track.range_m += track.range_rate_mps * t;
    ++track.age;
  }

  // Greedy nearest-neighbour association (adequate for the handful of
  // targets a forward-looking automotive radar tracks).
  std::vector<bool> detection_used(detections.size(), false);
  for (Track& track : tracks_) {
    Meters best_dist = options_.gate_m;
    std::size_t best = detections.size();
    for (std::size_t i = 0; i < detections.size(); ++i) {
      if (detection_used[i]) continue;
      const Meters dist = units::abs(detections[i].distance_m - track.range_m);
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    if (best != detections.size()) {
      detection_used[best] = true;
      const RangeRate& det = detections[best];
      const Meters residual = det.distance_m - track.range_m;
      track.range_m += options_.alpha * residual;
      track.range_rate_mps += options_.beta * residual / t;
      // Blend the measured rate too (the radar measures Doppler directly).
      track.range_rate_mps =
          0.5 * (track.range_rate_mps + det.range_rate_mps);
      ++track.hits;
      track.misses = 0;
      if (track.state == TrackState::kCoasting) {
        track.state = TrackState::kConfirmed;
      } else if (track.state == TrackState::kTentative &&
                 track.hits >= options_.confirm_hits) {
        track.state = TrackState::kConfirmed;
      }
    } else {
      ++track.misses;
      if (track.state == TrackState::kConfirmed) {
        track.state = TrackState::kCoasting;
      }
    }
  }

  // Spawn tentative tracks for unassociated detections.
  for (std::size_t i = 0; i < detections.size(); ++i) {
    if (detection_used[i]) continue;
    Track track;
    track.id = next_id_++;
    track.range_m = detections[i].distance_m;
    track.range_rate_mps = detections[i].range_rate_mps;
    track.hits = 1;
    tracks_.push_back(track);
  }

  // Drop stale tracks (tentative ones die faster: one miss).
  std::erase_if(tracks_, [this](const Track& track) {
    if (track.state == TrackState::kTentative) return track.misses >= 1;
    return track.misses >= options_.drop_misses;
  });

  return tracks_;
}

std::optional<Track> RangeTracker::primary_track() const {
  const Track* best = nullptr;
  for (const Track& track : tracks_) {
    if (track.state == TrackState::kTentative) continue;
    if (best == nullptr || track.range_m < best->range_m) best = &track;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

void RangeTracker::reset() {
  tracks_.clear();
  next_id_ = 1;
}

}  // namespace safe::radar
