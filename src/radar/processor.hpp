// FMCW radar receiver: baseband synthesis + beat-frequency estimation.
//
// This is the reproduction of the paper's MATLAB Phased-Array-Toolbox signal
// path: for each measurement epoch the processor synthesizes the up- and
// down-sweep complex baseband segments implied by an EchoScene, estimates the
// two beat frequencies (root-MUSIC by default, matching the paper; FFT
// periodogram as the cheap alternative), and inverts Eqs. 7-8 to range and
// range rate.
#pragma once

#include <cstdint>
#include <optional>

#include "dsp/fft.hpp"
#include "radar/echo_scene.hpp"
#include "radar/fmcw.hpp"
#include "sim/noise.hpp"

namespace safe::radar {

enum class BeatEstimator {
  kRootMusic,    ///< Subspace estimator (paper's choice).
  kPeriodogram,  ///< Zero-padded FFT peak with parabolic interpolation.
};

struct RadarProcessorConfig {
  FmcwParameters waveform{};
  BeatEstimator estimator = BeatEstimator::kRootMusic;
  Hertz sample_rate_hz{1.0e6};          ///< Baseband ADC rate.
  std::size_t samples_per_segment = 512;  ///< Per up/down sweep segment.
  std::size_t music_order = 16;         ///< Covariance order M.
  /// Receiver-output power above `noise_floor_w * power_alarm_factor` counts
  /// as a non-zero output for the CRA comparison (catches jamming).
  double power_alarm_factor = 8.0;
  /// Peak-to-average periodogram ratio above which a coherent echo is
  /// declared present (catches replayed/spoofed tones). Pure noise gives
  /// O(log N) ~ 10; real tones give O(N) ~ hundreds.
  double coherence_threshold = 40.0;
  /// Expected noise floor used for the power alarm (thermal by default; set
  /// from link_budget::thermal_noise_power_w).
  double noise_floor_w = 4.0e-14;
};

/// One radar output sample y'_k: what the digital side of the sensor sees.
struct RadarMeasurement {
  /// Estimated range/range-rate (only meaningful when `coherent_echo`).
  RangeRate estimate{};
  BeatFrequencies beats{};
  double rx_power_w = 0.0;        ///< Mean |x|^2 over the epoch.
  double peak_to_average = 0.0;   ///< Coherence statistic (up segment).
  bool coherent_echo = false;     ///< A sinusoidal component stands out.
  bool power_alarm = false;       ///< Total power far above the noise floor.

  /// "Val(y) != 0" in Algorithm 2: the receiver produced a non-zero output.
  [[nodiscard]] bool nonzero_output() const {
    return coherent_echo || power_alarm;
  }
};

/// Stateful (noise RNG) radar receiver.
class RadarProcessor {
 public:
  explicit RadarProcessor(RadarProcessorConfig config, std::uint64_t seed = 1);

  /// Processes one epoch. Deterministic given the construction seed and the
  /// sequence of calls.
  RadarMeasurement measure(const EchoScene& scene);

  /// Synthesizes the up- and down-sweep baseband segments for a scene
  /// (exposed for tests and the signal-path example).
  struct Segments {
    dsp::ComplexSignal up;
    dsp::ComplexSignal down;
  };
  Segments synthesize(const EchoScene& scene);

  [[nodiscard]] const RadarProcessorConfig& config() const { return config_; }

 private:
  /// Estimates the dominant beat frequency of one segment, ranking
  /// root-MUSIC candidates by their coherent power.
  double estimate_beat_hz(const dsp::ComplexSignal& segment,
                          std::size_t num_components) const;

  RadarProcessorConfig config_;
  sim::GaussianNoise noise_;
};

}  // namespace safe::radar
