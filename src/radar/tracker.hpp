// Multi-target range tracker (alpha-beta, nearest-neighbour association).
//
// Automotive radars do not hand raw detections to the controller: a tracker
// associates per-epoch detections to persistent tracks, confirms them after
// a few consistent hits, coasts through dropouts (including CRA challenge
// slots), and drops stale tracks. This is the "track memory" the undefended
// consumer in the car-following simulation approximates, factored out as a
// reusable component.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "radar/fmcw.hpp"

namespace safe::radar {

struct TrackerOptions {
  Seconds sample_time_s{1.0};
  /// Association gate: a detection within this range of a track's
  /// prediction belongs to it.
  Meters gate_m{5.0};
  /// Alpha-beta filter gains.
  double alpha = 0.6;
  double beta = 0.2;
  /// Hits needed to confirm a tentative track.
  std::size_t confirm_hits = 3;
  /// Consecutive misses before a track is dropped.
  std::size_t drop_misses = 5;
};

enum class TrackState { kTentative, kConfirmed, kCoasting };

struct Track {
  std::uint32_t id = 0;
  TrackState state = TrackState::kTentative;
  Meters range_m{0.0};
  MetersPerSecond range_rate_mps{0.0};
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t age = 0;
};

class RangeTracker {
 public:
  explicit RangeTracker(const TrackerOptions& options = {});

  /// Processes one epoch of detections (range/range-rate pairs). Returns
  /// the post-update track list.
  const std::vector<Track>& update(const std::vector<RangeRate>& detections);

  [[nodiscard]] const std::vector<Track>& tracks() const { return tracks_; }

  /// Nearest confirmed (or coasting) track, if any — what an ACC would
  /// follow.
  [[nodiscard]] std::optional<Track> primary_track() const;

  void reset();

 private:
  TrackerOptions options_;
  std::vector<Track> tracks_;
  std::uint32_t next_id_ = 1;
};

}  // namespace safe::radar
