// FMCW (frequency-modulated continuous wave) radar waveform model.
//
// Implements the triangular-chirp beat-frequency relations of Section 4.1:
//
//   f_b+ = (2 d / c) (B_s / T_s) - 2 dv / lambda          (Eq. 5)
//   f_b- = (2 d / c) (B_s / T_s) + 2 dv / lambda          (Eq. 6)
//   d    = c T_s (f_b+ + f_b-) / (4 B_s)                  (Eq. 7)
//   dv   = (lambda / 4) (f_b- - f_b+)                     (Eq. 8)
//
// where dv is the range rate (positive = target receding).
#pragma once

#include <stdexcept>

#include "units/units.hpp"

namespace safe::radar {

using units::Decibels;
using units::Hertz;
using units::HertzPerSecond;
using units::Meters;
using units::MetersPerSecond;
using units::Seconds;

/// Waveform and antenna parameters of a 77 GHz automotive FMCW radar.
struct FmcwParameters {
  Hertz carrier_frequency_hz{77.0e9};
  Hertz sweep_bandwidth_hz{150.0e6};     ///< B_s
  Seconds sweep_time_s{2.0e-3};          ///< T_s (full triangle)
  Meters wavelength_m{3.89e-3};          ///< lambda
  double tx_power_w = 10.0e-3;           ///< P_t (10 mW)
  Decibels antenna_gain_dbi{28.0};       ///< G
  Decibels system_loss_db{0.10};         ///< L
  Hertz receiver_bandwidth_hz{150.0e6};  ///< B (RF band, for jammer coupling)
  /// Post-dechirp anti-alias bandwidth: thermal noise integrates over this
  /// narrow beat-frequency band, not the RF sweep bandwidth.
  Hertz baseband_bandwidth_hz{1.0e6};
  Meters min_range_m{2.0};
  Meters max_range_m{200.0};

  /// Chirp slope B_s / T_s — the factor that turns a round-trip delay into
  /// a beat frequency (Eqs. 5-6).
  [[nodiscard]] constexpr HertzPerSecond sweep_slope() const {
    return sweep_bandwidth_hz / sweep_time_s;
  }
};

/// Bosch LRR2-class long-range radar profile used by the paper's case study.
FmcwParameters bosch_lrr2_parameters();

/// Throws std::invalid_argument when a parameter set is physically
/// meaningless (non-positive bandwidth/time/power or inverted range limits).
void validate_parameters(const FmcwParameters& params);

/// Beat-frequency pair extracted from the triangular sweep.
struct BeatFrequencies {
  Hertz up_hz{0.0};    ///< f_b+ (positive-slope segment)
  Hertz down_hz{0.0};  ///< f_b- (negative-slope segment)
};

/// Forward map (Eqs. 5-6): target range and range rate to beat frequencies.
/// `range_rate` is d(dv)/dt positive when the gap is opening.
BeatFrequencies beat_frequencies(const FmcwParameters& params, Meters distance,
                                 MetersPerSecond range_rate);

/// Measured range/range-rate pair.
struct RangeRate {
  Meters distance_m{0.0};
  MetersPerSecond range_rate_mps{0.0};
};

/// Inverse map (Eqs. 7-8): beat frequencies to range and range rate.
RangeRate range_rate_from_beats(const FmcwParameters& params,
                                const BeatFrequencies& beats);

/// Extra distance conjured by a delay-injection attack that adds
/// `extra_delay` of round-trip delay (c * tau / 2).
Meters spoofed_range_offset(Seconds extra_delay);

/// Round-trip delay an attacker must inject to fake `extra_distance` of
/// additional range.
Seconds injection_delay_for_offset(Meters extra_distance);

}  // namespace safe::radar
