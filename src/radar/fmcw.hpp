// FMCW (frequency-modulated continuous wave) radar waveform model.
//
// Implements the triangular-chirp beat-frequency relations of Section 4.1:
//
//   f_b+ = (2 d / c) (B_s / T_s) - 2 dv / lambda          (Eq. 5)
//   f_b- = (2 d / c) (B_s / T_s) + 2 dv / lambda          (Eq. 6)
//   d    = c T_s (f_b+ + f_b-) / (4 B_s)                  (Eq. 7)
//   dv   = (lambda / 4) (f_b- - f_b+)                     (Eq. 8)
//
// where dv is the range rate (positive = target receding).
#pragma once

#include <stdexcept>

namespace safe::radar {

/// Waveform and antenna parameters of a 77 GHz automotive FMCW radar.
struct FmcwParameters {
  double carrier_frequency_hz = 77.0e9;
  double sweep_bandwidth_hz = 150.0e6;   ///< B_s
  double sweep_time_s = 2.0e-3;          ///< T_s (full triangle)
  double wavelength_m = 3.89e-3;         ///< lambda
  double tx_power_w = 10.0e-3;           ///< P_t (10 mW)
  double antenna_gain_dbi = 28.0;        ///< G
  double system_loss_db = 0.10;          ///< L
  double receiver_bandwidth_hz = 150.0e6;  ///< B (RF band, for jammer coupling)
  /// Post-dechirp anti-alias bandwidth: thermal noise integrates over this
  /// narrow beat-frequency band, not the RF sweep bandwidth.
  double baseband_bandwidth_hz = 1.0e6;
  double min_range_m = 2.0;
  double max_range_m = 200.0;
};

/// Bosch LRR2-class long-range radar profile used by the paper's case study.
FmcwParameters bosch_lrr2_parameters();

/// Throws std::invalid_argument when a parameter set is physically
/// meaningless (non-positive bandwidth/time/power or inverted range limits).
void validate_parameters(const FmcwParameters& params);

/// Beat-frequency pair extracted from the triangular sweep.
struct BeatFrequencies {
  double up_hz = 0.0;    ///< f_b+ (positive-slope segment)
  double down_hz = 0.0;  ///< f_b- (negative-slope segment)
};

/// Forward map (Eqs. 5-6): target range and range rate to beat frequencies.
/// `range_rate_mps` is d(dv)/dt positive when the gap is opening.
BeatFrequencies beat_frequencies(const FmcwParameters& params,
                                 double distance_m, double range_rate_mps);

/// Measured range/range-rate pair.
struct RangeRate {
  double distance_m = 0.0;
  double range_rate_mps = 0.0;
};

/// Inverse map (Eqs. 7-8): beat frequencies to range and range rate.
RangeRate range_rate_from_beats(const FmcwParameters& params,
                                const BeatFrequencies& beats);

/// Extra distance conjured by a delay-injection attack that adds
/// `extra_delay_s` of round-trip delay (c * tau / 2).
double spoofed_range_offset_m(double extra_delay_s);

/// Round-trip delay an attacker must inject to fake `extra_distance_m` of
/// additional range.
double injection_delay_for_offset_s(double extra_distance_m);

}  // namespace safe::radar
