// Description of everything arriving at the radar receiver in one epoch.
//
// The attack models (attack/) build EchoScenes; the RadarProcessor turns a
// scene into synthesized baseband segments and a measurement. Keeping the
// scene explicit separates "what the RF environment contains" from "what the
// receiver estimates", which is exactly the boundary the CRA defense probes.
#pragma once

#include <vector>

#include "units/units.hpp"

namespace safe::radar {

/// One echo (true target reflection or attacker-injected counterfeit).
struct EchoComponent {
  units::Meters distance_m{0.0};  ///< Apparent range (includes spoof delay).
  units::MetersPerSecond range_rate_mps{0.0};  ///< Apparent range rate.
  double power_w = 0.0;           ///< Power at the receiver input.
};

/// Receiver-input contents for one measurement epoch.
struct EchoScene {
  /// False when the CRA modulator suppressed the probe (challenge slot): a
  /// genuine reflection cannot exist, so `echoes` should then only contain
  /// attacker-injected components.
  bool tx_enabled = true;

  std::vector<EchoComponent> echoes;

  /// Total incoherent noise power (thermal + jammer), watts.
  double noise_power_w = 0.0;
};

}  // namespace safe::radar
