#include "radar/link_budget.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace safe::radar {

namespace {

constexpr double kBoltzmann = 1.380649e-23;
constexpr double kReferenceTemperatureK = 290.0;

void check_geometry(Meters distance, double rcs_m2) {
  if (distance <= Meters{0.0}) {
    throw std::invalid_argument("link budget: distance must be positive");
  }
  if (rcs_m2 < 0.0) {
    throw std::invalid_argument("link budget: RCS must be non-negative");
  }
}

}  // namespace

double received_echo_power_w(const FmcwParameters& radar, Meters distance,
                             double rcs_m2) {
  validate_parameters(radar);
  check_geometry(distance, rcs_m2);
  const double gain = radar.antenna_gain_dbi.to_linear();
  const double loss = radar.system_loss_db.to_linear();
  const double four_pi = 4.0 * std::numbers::pi;
  const double wavelength = radar.wavelength_m.value();
  return radar.tx_power_w * gain * gain * wavelength * wavelength * rcs_m2 /
         (four_pi * four_pi * four_pi * std::pow(distance.value(), 4.0) *
          loss);
}

double received_jammer_power_w(const FmcwParameters& radar,
                               const JammerParameters& jammer,
                               Meters distance) {
  validate_parameters(radar);
  check_geometry(distance, 0.0);
  if (jammer.peak_power_w <= 0.0 || jammer.bandwidth_hz <= Hertz{0.0}) {
    throw std::invalid_argument("jammer: power and bandwidth must be positive");
  }
  const double gain = radar.antenna_gain_dbi.to_linear();
  const double jammer_gain = jammer.antenna_gain_dbi.to_linear();
  const double jammer_loss = jammer.loss_db.to_linear();
  const double four_pi = 4.0 * std::numbers::pi;
  const double wavelength = radar.wavelength_m.value();
  // One-way propagation, bandwidth-coupling factor B / B_J.
  return jammer.peak_power_w * jammer_gain * wavelength * wavelength * gain *
         radar.receiver_bandwidth_hz.value() /
         (four_pi * four_pi * distance.value() * distance.value() *
          jammer.bandwidth_hz.value() * jammer_loss);
}

double signal_to_jammer_ratio(const FmcwParameters& radar,
                              const JammerParameters& jammer, Meters distance,
                              double rcs_m2) {
  return received_echo_power_w(radar, distance, rcs_m2) /
         received_jammer_power_w(radar, jammer, distance);
}

bool jamming_succeeds(const FmcwParameters& radar,
                      const JammerParameters& jammer, Meters distance,
                      double rcs_m2) {
  return signal_to_jammer_ratio(radar, jammer, distance, rcs_m2) < 1.0;
}

double thermal_noise_power_w(const FmcwParameters& radar,
                             Decibels noise_figure) {
  validate_parameters(radar);
  return kBoltzmann * kReferenceTemperatureK *
         radar.baseband_bandwidth_hz.value() * noise_figure.to_linear();
}

}  // namespace safe::radar
