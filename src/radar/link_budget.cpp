#include "radar/link_budget.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "sim/units.hpp"

namespace safe::radar {

namespace units = safe::sim::units;

namespace {

constexpr double kBoltzmann = 1.380649e-23;
constexpr double kReferenceTemperatureK = 290.0;

void check_geometry(double distance_m, double rcs_m2) {
  if (distance_m <= 0.0) {
    throw std::invalid_argument("link budget: distance must be positive");
  }
  if (rcs_m2 < 0.0) {
    throw std::invalid_argument("link budget: RCS must be non-negative");
  }
}

}  // namespace

double received_echo_power_w(const FmcwParameters& radar, double distance_m,
                             double rcs_m2) {
  validate_parameters(radar);
  check_geometry(distance_m, rcs_m2);
  const double gain = units::db_to_linear(radar.antenna_gain_dbi);
  const double loss = units::db_to_linear(radar.system_loss_db);
  const double four_pi = 4.0 * std::numbers::pi;
  return radar.tx_power_w * gain * gain * radar.wavelength_m *
         radar.wavelength_m * rcs_m2 /
         (four_pi * four_pi * four_pi * std::pow(distance_m, 4.0) * loss);
}

double received_jammer_power_w(const FmcwParameters& radar,
                               const JammerParameters& jammer,
                               double distance_m) {
  validate_parameters(radar);
  check_geometry(distance_m, 0.0);
  if (jammer.peak_power_w <= 0.0 || jammer.bandwidth_hz <= 0.0) {
    throw std::invalid_argument("jammer: power and bandwidth must be positive");
  }
  const double gain = units::db_to_linear(radar.antenna_gain_dbi);
  const double jammer_gain = units::db_to_linear(jammer.antenna_gain_dbi);
  const double jammer_loss = units::db_to_linear(jammer.loss_db);
  const double four_pi = 4.0 * std::numbers::pi;
  // One-way propagation, bandwidth-coupling factor B / B_J.
  return jammer.peak_power_w * jammer_gain * radar.wavelength_m *
         radar.wavelength_m * gain * radar.receiver_bandwidth_hz /
         (four_pi * four_pi * distance_m * distance_m * jammer.bandwidth_hz *
          jammer_loss);
}

double signal_to_jammer_ratio(const FmcwParameters& radar,
                              const JammerParameters& jammer,
                              double distance_m, double rcs_m2) {
  return received_echo_power_w(radar, distance_m, rcs_m2) /
         received_jammer_power_w(radar, jammer, distance_m);
}

bool jamming_succeeds(const FmcwParameters& radar,
                      const JammerParameters& jammer, double distance_m,
                      double rcs_m2) {
  return signal_to_jammer_ratio(radar, jammer, distance_m, rcs_m2) < 1.0;
}

double thermal_noise_power_w(const FmcwParameters& radar,
                             double noise_figure_db) {
  validate_parameters(radar);
  return kBoltzmann * kReferenceTemperatureK * radar.baseband_bandwidth_hz *
         units::db_to_linear(noise_figure_db);
}

}  // namespace safe::radar
