#include "radar/fmcw.hpp"

#include "sim/units.hpp"

namespace safe::radar {

namespace units = safe::sim::units;

FmcwParameters bosch_lrr2_parameters() {
  // Values quoted in Sections 4.1 and 6 of the paper.
  return FmcwParameters{};
}

void validate_parameters(const FmcwParameters& params) {
  if (params.sweep_bandwidth_hz <= 0.0 || params.sweep_time_s <= 0.0) {
    throw std::invalid_argument("FmcwParameters: sweep must be positive");
  }
  if (params.wavelength_m <= 0.0 || params.carrier_frequency_hz <= 0.0) {
    throw std::invalid_argument("FmcwParameters: carrier must be positive");
  }
  if (params.tx_power_w <= 0.0) {
    throw std::invalid_argument("FmcwParameters: tx power must be positive");
  }
  if (params.receiver_bandwidth_hz <= 0.0) {
    throw std::invalid_argument("FmcwParameters: bandwidth must be positive");
  }
  if (!(params.min_range_m >= 0.0) || params.max_range_m <= params.min_range_m) {
    throw std::invalid_argument("FmcwParameters: bad range limits");
  }
}

BeatFrequencies beat_frequencies(const FmcwParameters& params,
                                 double distance_m, double range_rate_mps) {
  validate_parameters(params);
  if (distance_m < 0.0) {
    throw std::invalid_argument("beat_frequencies: negative distance");
  }
  const double sweep_slope =
      params.sweep_bandwidth_hz / params.sweep_time_s;  // B_s / T_s
  const double range_term =
      (2.0 * distance_m / units::kSpeedOfLightMps) * sweep_slope;
  const double doppler = 2.0 * range_rate_mps / params.wavelength_m;
  return BeatFrequencies{
      .up_hz = range_term - doppler,
      .down_hz = range_term + doppler,
  };
}

RangeRate range_rate_from_beats(const FmcwParameters& params,
                                const BeatFrequencies& beats) {
  validate_parameters(params);
  return RangeRate{
      .distance_m = units::kSpeedOfLightMps * params.sweep_time_s *
                    (beats.up_hz + beats.down_hz) /
                    (4.0 * params.sweep_bandwidth_hz),
      .range_rate_mps =
          params.wavelength_m / 4.0 * (beats.down_hz - beats.up_hz),
  };
}

double spoofed_range_offset_m(double extra_delay_s) {
  return units::delay_to_range_m(extra_delay_s);
}

double injection_delay_for_offset_s(double extra_distance_m) {
  return units::range_to_delay_s(extra_distance_m);
}

}  // namespace safe::radar
