#include "radar/fmcw.hpp"

#include "units/units.hpp"

namespace safe::radar {

namespace units = safe::units;

FmcwParameters bosch_lrr2_parameters() {
  // Values quoted in Sections 4.1 and 6 of the paper.
  return FmcwParameters{};
}

void validate_parameters(const FmcwParameters& params) {
  if (params.sweep_bandwidth_hz <= Hertz{0.0} ||
      params.sweep_time_s <= Seconds{0.0}) {
    throw std::invalid_argument("FmcwParameters: sweep must be positive");
  }
  if (params.wavelength_m <= Meters{0.0} ||
      params.carrier_frequency_hz <= Hertz{0.0}) {
    throw std::invalid_argument("FmcwParameters: carrier must be positive");
  }
  if (params.tx_power_w <= 0.0) {
    throw std::invalid_argument("FmcwParameters: tx power must be positive");
  }
  // Both the RF band (jammer coupling) and the post-dechirp baseband (noise
  // integration) must be physical; the baseband check was missing before the
  // unit audit, letting a zero bandwidth silence the thermal noise floor.
  if (params.receiver_bandwidth_hz <= Hertz{0.0} ||
      params.baseband_bandwidth_hz <= Hertz{0.0}) {
    throw std::invalid_argument("FmcwParameters: bandwidth must be positive");
  }
  if (!(params.min_range_m >= Meters{0.0}) ||
      params.max_range_m <= params.min_range_m) {
    throw std::invalid_argument("FmcwParameters: bad range limits");
  }
}

BeatFrequencies beat_frequencies(const FmcwParameters& params, Meters distance,
                                 MetersPerSecond range_rate) {
  validate_parameters(params);
  if (distance < Meters{0.0}) {
    throw std::invalid_argument("beat_frequencies: negative distance");
  }
  const double sweep_slope =
      params.sweep_bandwidth_hz.value() / params.sweep_time_s.value();
  const double range_term =
      (2.0 * distance.value() / units::kSpeedOfLightMps) * sweep_slope;
  const double doppler =
      2.0 * range_rate.value() / params.wavelength_m.value();
  return BeatFrequencies{
      .up_hz = Hertz{range_term - doppler},
      .down_hz = Hertz{range_term + doppler},
  };
}

RangeRate range_rate_from_beats(const FmcwParameters& params,
                                const BeatFrequencies& beats) {
  validate_parameters(params);
  return RangeRate{
      .distance_m =
          Meters{units::kSpeedOfLightMps * params.sweep_time_s.value() *
                 (beats.up_hz.value() + beats.down_hz.value()) /
                 (4.0 * params.sweep_bandwidth_hz.value())},
      .range_rate_mps =
          MetersPerSecond{params.wavelength_m.value() / 4.0 *
                          (beats.down_hz.value() - beats.up_hz.value())},
  };
}

Meters spoofed_range_offset(Seconds extra_delay) {
  return units::delay_to_range(extra_delay);
}

Seconds injection_delay_for_offset(Meters extra_distance) {
  return units::range_to_delay(extra_distance);
}

}  // namespace safe::radar
