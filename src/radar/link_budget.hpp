// Radar and jammer link budgets (Eqs. 9-11).
//
//   P_r      = P_t G^2 lambda^2 sigma / ((4 pi)^3 d^4 L)       (Eq. 9)
//   P_jammer = P_J G_J lambda^2 G B / ((4 pi)^2 d^2 B_J L_J)   (Eq. 10)
//   ratio    = P_r / P_jammer                                  (Eq. 11)
//
// A jamming attack succeeds when the ratio drops below unity: the
// self-screening jammer then dominates the target echo at the receiver.
#pragma once

#include "radar/fmcw.hpp"

namespace safe::radar {

/// Self-screening jammer parameters (paper Section 6.2 values as defaults).
struct JammerParameters {
  double peak_power_w = 100.0e-3;    ///< P_J = 100 mW
  Decibels antenna_gain_dbi{10.0};   ///< G_J
  Hertz bandwidth_hz{155.0e6};       ///< B_J
  Decibels loss_db{0.10};            ///< L_J
};

/// Echo power received from a target of radar cross-section `rcs_m2` at
/// `distance` (Eq. 9, watts). Throws std::invalid_argument for
/// non-positive distance or negative RCS.
double received_echo_power_w(const FmcwParameters& radar, Meters distance,
                             double rcs_m2);

/// Jamming power coupled into the radar receiver from a self-screening
/// jammer at `distance` (Eq. 10, watts).
double received_jammer_power_w(const FmcwParameters& radar,
                               const JammerParameters& jammer,
                               Meters distance);

/// Signal-to-jammer power ratio (Eq. 11).
double signal_to_jammer_ratio(const FmcwParameters& radar,
                              const JammerParameters& jammer, Meters distance,
                              double rcs_m2);

/// True when the jammer overpowers the echo (ratio < 1), i.e. the DoS attack
/// succeeds at this geometry.
bool jamming_succeeds(const FmcwParameters& radar,
                      const JammerParameters& jammer, Meters distance,
                      double rcs_m2);

/// Thermal noise floor k T B F of the receiver over the post-dechirp
/// baseband bandwidth (watts). `noise_figure` defaults to a typical
/// automotive front end.
double thermal_noise_power_w(const FmcwParameters& radar,
                             Decibels noise_figure = Decibels{10.0});

}  // namespace safe::radar
