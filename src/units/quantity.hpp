// Zero-overhead strong quantity wrapper over `double`.
//
// A Quantity<Dim> stores exactly one double and has no virtuals, so it
// compiles to the identical machine code as the raw value; every operator is
// constexpr. The type system enforces dimension algebra:
//
//   * addition/subtraction/comparison only between identical dimensions,
//   * multiplication/division compose dimensions (Meters / Seconds ->
//     MetersPerSecond), collapsing to plain double when all exponents cancel
//     (Meters / Meters -> double),
//   * no implicit conversion from or to double: construction is explicit and
//     the only way out is the `.value()` escape hatch, so a wrong-unit call
//     site is a compile error, never a silent scale bug.
#pragma once

#include "units/dimension.hpp"

namespace safe::units {

template <class Dim>
class Quantity {
 public:
  using dimension = Dim;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double raw) : value_(raw) {}

  /// Escape hatch: the raw SI magnitude. Every use is grep-able, which is
  /// what keeps the hot loops honest about where they shed the types.
  [[nodiscard]] constexpr double value() const { return value_; }

  // Same-dimension linear arithmetic.
  constexpr Quantity operator+(Quantity other) const {
    return Quantity{value_ + other.value_};
  }
  constexpr Quantity operator-(Quantity other) const {
    return Quantity{value_ - other.value_};
  }
  constexpr Quantity operator-() const { return Quantity{-value_}; }
  constexpr Quantity operator+() const { return *this; }

  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }

  // Dimensionless scaling.
  constexpr Quantity& operator*=(double scale) {
    value_ *= scale;
    return *this;
  }
  constexpr Quantity& operator/=(double scale) {
    value_ /= scale;
    return *this;
  }

  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  double value_ = 0.0;
};

namespace detail {

/// Product/quotient result type: a Quantity of the composed dimension, or a
/// plain double when every exponent cancels.
template <class Dim>
struct Collapse {
  using type = Quantity<Dim>;
  static constexpr type make(double raw) { return type{raw}; }
};
template <>
struct Collapse<Scalar> {
  using type = double;
  static constexpr type make(double raw) { return raw; }
};

}  // namespace detail

template <class D1, class D2>
constexpr auto operator*(Quantity<D1> a, Quantity<D2> b) {
  return detail::Collapse<DimensionProduct<D1, D2>>::make(a.value() *
                                                          b.value());
}

template <class D1, class D2>
constexpr auto operator/(Quantity<D1> a, Quantity<D2> b) {
  return detail::Collapse<DimensionQuotient<D1, D2>>::make(a.value() /
                                                           b.value());
}

template <class D>
constexpr Quantity<D> operator*(Quantity<D> q, double scale) {
  return Quantity<D>{q.value() * scale};
}
template <class D>
constexpr Quantity<D> operator*(double scale, Quantity<D> q) {
  return Quantity<D>{scale * q.value()};
}
template <class D>
constexpr Quantity<D> operator/(Quantity<D> q, double scale) {
  return Quantity<D>{q.value() / scale};
}
template <class D>
constexpr Quantity<DimensionInverse<D>> operator/(double numerator,
                                                  Quantity<D> q) {
  return Quantity<DimensionInverse<D>>{numerator / q.value()};
}

// Constexpr helpers mirroring <cmath>/<algorithm> for quantities.
template <class D>
constexpr Quantity<D> abs(Quantity<D> q) {
  return q.value() < 0.0 ? -q : q;
}
template <class D>
constexpr Quantity<D> min(Quantity<D> a, Quantity<D> b) {
  return b < a ? b : a;
}
template <class D>
constexpr Quantity<D> max(Quantity<D> a, Quantity<D> b) {
  return a < b ? b : a;
}
template <class D>
constexpr Quantity<D> clamp(Quantity<D> q, Quantity<D> lo, Quantity<D> hi) {
  return q < lo ? lo : (hi < q ? hi : q);
}

}  // namespace safe::units
