// Strong unit types and conversions shared by the whole library.
//
// Everything inside the library is SI. Public module APIs (radar, vehicle,
// control, estimation, sensors, core) trade in the strong types below so a
// range can never be passed where a delay is expected; internal hot loops
// unwrap to raw doubles through the explicit `.value()` escape hatch and the
// compat helpers at the bottom. Non-SI spellings (mph, dB) exist only at
// construction edges: `MetersPerSecond` has a `from_mph`, `Decibels` has a
// `to_linear`, and nothing else in the library may open-code those factors
// (tools/lint_units.py enforces this).
#pragma once

#include <cmath>
#include <type_traits>

#include "units/quantity.hpp"

namespace safe::units {

// --- Named quantities ----------------------------------------------------

using Meters = Quantity<Dimension<1, 0, 0>>;
using Seconds = Quantity<Dimension<0, 1, 0>>;
using MetersPerSecond = Quantity<Dimension<1, -1, 0>>;
using MetersPerSecond2 = Quantity<Dimension<1, -2, 0>>;
using Hertz = Quantity<Dimension<0, -1, 0>>;
using HertzPerSecond = Quantity<Dimension<0, -2, 0>>;
using Radians = Quantity<Dimension<0, 0, 1>>;

// Spot-check the dimension algebra at compile time: the aliases above are
// not independent definitions but points on one exponent lattice.
static_assert(
    std::is_same_v<decltype(Meters{} / Seconds{}), MetersPerSecond>);
static_assert(
    std::is_same_v<decltype(MetersPerSecond{} / Seconds{}), MetersPerSecond2>);
static_assert(std::is_same_v<decltype(MetersPerSecond{} * Seconds{}), Meters>);
static_assert(std::is_same_v<decltype(Hertz{} / Seconds{}), HertzPerSecond>);
static_assert(std::is_same_v<decltype(HertzPerSecond{} * Seconds{}), Hertz>);
static_assert(std::is_same_v<decltype(1.0 / Seconds{1.0}), Hertz>);
static_assert(std::is_same_v<decltype(Hertz{} * Seconds{}), double>);
static_assert(std::is_same_v<decltype(Meters{} * Hertz{}), MetersPerSecond>);

// --- Decibels ------------------------------------------------------------

/// Logarithmic power ratio. Deliberately outside the dimension lattice:
/// adding decibels multiplies linear ratios, so dB values must never mix
/// with linear quantities except through the explicit {to,from}_linear
/// edges.
class Decibels {
 public:
  constexpr Decibels() = default;
  constexpr explicit Decibels(double db) : db_(db) {}

  [[nodiscard]] constexpr double value() const { return db_; }

  /// dB -> linear power ratio.
  [[nodiscard]] double to_linear() const { return std::pow(10.0, db_ / 10.0); }

  /// Linear power ratio -> dB.
  static Decibels from_linear(double ratio) {
    return Decibels{10.0 * std::log10(ratio)};
  }

  constexpr Decibels operator+(Decibels other) const {
    return Decibels{db_ + other.db_};
  }
  constexpr Decibels operator-(Decibels other) const {
    return Decibels{db_ - other.db_};
  }
  constexpr Decibels operator-() const { return Decibels{-db_}; }

  friend constexpr auto operator<=>(Decibels, Decibels) = default;

 private:
  double db_ = 0.0;
};

// --- Angle helpers -------------------------------------------------------

inline double sin(Radians a) { return std::sin(a.value()); }
inline double cos(Radians a) { return std::cos(a.value()); }
inline double tan(Radians a) { return std::tan(a.value()); }

// --- Physical constants --------------------------------------------------

inline constexpr MetersPerSecond kSpeedOfLight{299'792'458.0};
inline constexpr double kSpeedOfLightMps = kSpeedOfLight.value();
inline constexpr double kMilesPerHourToMps = 0.44704;

// --- Construction-edge conversions ---------------------------------------

/// Miles per hour -> strong speed (paper parameters are quoted in mph).
constexpr MetersPerSecond from_mph(double mph) {
  return MetersPerSecond{mph * kMilesPerHourToMps};
}

/// Strong speed -> miles per hour (display/reporting edge).
constexpr double to_mph(MetersPerSecond v) {
  return v.value() / kMilesPerHourToMps;
}

/// Round-trip delay of a radar echo from a target at range `d`.
constexpr Seconds range_to_delay(Meters d) {
  return Seconds{2.0 * d.value() / kSpeedOfLightMps};
}

/// Target range implied by a round-trip delay.
constexpr Meters delay_to_range(Seconds delay) {
  return Meters{delay.value() * kSpeedOfLightMps / 2.0};
}

// --- Raw-double compat helpers -------------------------------------------
//
// For internal hot loops and legacy call sites that already unwrapped to
// doubles. Same formulas as the strong edges above, bit for bit.

/// Miles per hour -> meters per second.
constexpr double mph_to_mps(double mph) { return mph * kMilesPerHourToMps; }

/// Meters per second -> miles per hour.
constexpr double mps_to_mph(double mps) { return mps / kMilesPerHourToMps; }

/// Decibels -> linear power ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Linear power ratio -> decibels.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

/// Round-trip delay for a target at `distance_m` (seconds).
constexpr double range_to_delay_s(double distance_m) {
  return 2.0 * distance_m / kSpeedOfLightMps;
}

/// Target distance implied by a round-trip delay (meters).
constexpr double delay_to_range_m(double delay_s) {
  return delay_s * kSpeedOfLightMps / 2.0;
}

// --- Physical plausibility limits ---------------------------------------
//
// Bounds on what an automotive ranging sensor can legitimately report.
// Anything outside is a sensor fault or an implausibly crude spoof; the
// pipeline's health monitor rejects such samples before they reach the
// controller or the predictors.

/// Generous ceiling on any automotive radar range report (Bosch LRR2 tops
/// out at 200 m; 1 km covers every profile in sensors/).
inline constexpr Meters kMaxPlausibleRange{1000.0};
inline constexpr double kMaxPlausibleRangeM = kMaxPlausibleRange.value();

/// |relative velocity| ceiling: two vehicles closing at ~270 mph.
inline constexpr MetersPerSecond kMaxPlausibleSpeed{120.0};
inline constexpr double kMaxPlausibleSpeedMps = kMaxPlausibleSpeed.value();

// Compile-time sanity on the bounds and the conversion edges they gate.
static_assert(kMaxPlausibleRange > Meters{0.0} &&
                  kMaxPlausibleRange < Meters{100'000.0},
              "plausible range ceiling must stay in the automotive regime");
static_assert(kMaxPlausibleSpeed > MetersPerSecond{0.0} &&
                  kMaxPlausibleSpeed < kSpeedOfLight,
              "plausible speed ceiling must stay sub-luminal");
static_assert(range_to_delay(kMaxPlausibleRange) < Seconds{1.0e-4},
              "max-range round trip must stay inside one radar epoch");
static_assert(from_mph(60.0) > MetersPerSecond{26.8} &&
                  from_mph(60.0) < MetersPerSecond{26.9},
              "mph conversion factor is off");

/// Range report within [0, max]: finite and physically representable.
inline bool plausible_range(Meters d, Meters max_range = kMaxPlausibleRange) {
  return std::isfinite(d.value()) && d >= Meters{0.0} && d <= max_range;
}

/// Relative-velocity report within +/- max: finite and physical.
inline bool plausible_speed(MetersPerSecond v,
                            MetersPerSecond max_speed = kMaxPlausibleSpeed) {
  return std::isfinite(v.value()) && v >= -max_speed && v <= max_speed;
}

/// Raw-double compat form of plausible_range.
inline bool plausible_range_m(double d,
                              double max_range_m = kMaxPlausibleRangeM) {
  return plausible_range(Meters{d}, Meters{max_range_m});
}

/// Raw-double compat form of plausible_speed.
inline bool plausible_speed_mps(double v,
                                double max_speed_mps = kMaxPlausibleSpeedMps) {
  return plausible_speed(MetersPerSecond{v}, MetersPerSecond{max_speed_mps});
}

// --- Literals ------------------------------------------------------------

namespace literals {

constexpr Meters operator""_m(long double v) {
  return Meters{static_cast<double>(v)};
}
constexpr Meters operator""_m(unsigned long long v) {
  return Meters{static_cast<double>(v)};
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr MetersPerSecond operator""_mps(long double v) {
  return MetersPerSecond{static_cast<double>(v)};
}
constexpr MetersPerSecond operator""_mps(unsigned long long v) {
  return MetersPerSecond{static_cast<double>(v)};
}
constexpr MetersPerSecond2 operator""_mps2(long double v) {
  return MetersPerSecond2{static_cast<double>(v)};
}
constexpr MetersPerSecond2 operator""_mps2(unsigned long long v) {
  return MetersPerSecond2{static_cast<double>(v)};
}
constexpr Hertz operator""_hz(long double v) {
  return Hertz{static_cast<double>(v)};
}
constexpr Hertz operator""_hz(unsigned long long v) {
  return Hertz{static_cast<double>(v)};
}
constexpr HertzPerSecond operator""_hzps(long double v) {
  return HertzPerSecond{static_cast<double>(v)};
}
constexpr HertzPerSecond operator""_hzps(unsigned long long v) {
  return HertzPerSecond{static_cast<double>(v)};
}
constexpr Decibels operator""_db(long double v) {
  return Decibels{static_cast<double>(v)};
}
constexpr Decibels operator""_db(unsigned long long v) {
  return Decibels{static_cast<double>(v)};
}
constexpr Radians operator""_rad(long double v) {
  return Radians{static_cast<double>(v)};
}
constexpr Radians operator""_rad(unsigned long long v) {
  return Radians{static_cast<double>(v)};
}

}  // namespace literals

}  // namespace safe::units
