// Compile-time dimension algebra for the strong unit types in units.hpp.
//
// A dimension is the integer exponent vector (length, time, angle). The
// quantity layer composes dimensions through multiplication and division so
// that e.g. Meters / Seconds *is* MetersPerSecond and Hertz / Seconds *is*
// HertzPerSecond, with no runtime representation at all.
#pragma once

namespace safe::units {

/// Exponent vector of a physical dimension: L^length * T^time * A^angle.
template <int LengthExp, int TimeExp, int AngleExp>
struct Dimension {
  static constexpr int length = LengthExp;
  static constexpr int time = TimeExp;
  static constexpr int angle = AngleExp;
};

/// The dimension of a pure ratio (all exponents zero).
using Scalar = Dimension<0, 0, 0>;

template <class A, class B>
using DimensionProduct =
    Dimension<A::length + B::length, A::time + B::time, A::angle + B::angle>;

template <class A, class B>
using DimensionQuotient =
    Dimension<A::length - B::length, A::time - B::time, A::angle - B::angle>;

template <class A>
using DimensionInverse = Dimension<-A::length, -A::time, -A::angle>;

template <class A, class B>
inline constexpr bool kSameDimension =
    A::length == B::length && A::time == B::time && A::angle == B::angle;

}  // namespace safe::units
