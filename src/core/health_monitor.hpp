// Health monitoring + graceful degradation for the safe-measurement pipeline.
//
// The paper assumes the only thing that goes wrong is one of two clean
// attack archetypes; a deployed pipeline also has to survive compound sensor
// faults: non-finite radar outputs, out-of-range reports, stealthy jumps,
// diverging RLS free-runs, and holdovers that outlive any plausible
// estimate. The HealthMonitor centralizes those checks and drives the
// degradation state machine
//
//   CLEAN -> UNDER_ATTACK -> HOLDOVER -> DEGRADED_SAFE_STOP -> CLEAN
//
// where DEGRADED_SAFE_STOP is the explicit admission that the estimates are
// stale: the controller is commanded into a conservative deceleration
// instead of trusting a free-run that has outlived its training data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "estimation/chi_square.hpp"
#include "units/units.hpp"

namespace safe::core {

using units::Meters;
using units::MetersPerSecond;

/// Pipeline degradation level, ordered by severity. Reported in every
/// SafeMeasurement so controllers, traces, and benches observe the machine.
enum class DegradationState : std::uint8_t {
  kClean = 0,       ///< Trusted measurements pass through.
  kUnderAttack = 1, ///< CRA detector active: estimates substitute.
  kHoldover = 2,    ///< No attack, but data invalid/missing: estimates hold.
  kSafeStop = 3,    ///< Holdover budget exhausted: conservative stop.
};

[[nodiscard]] const char* to_string(DegradationState state);

struct HealthOptions {
  /// Reject non-finite / out-of-physical-range measurements before they
  /// reach the predictors or the controller. Always safe to leave on: valid
  /// radar reports are never rejected.
  bool validate_measurements = true;
  Meters max_range_m = units::kMaxPlausibleRange;
  MetersPerSecond max_speed_mps = units::kMaxPlausibleSpeed;

  /// chi^2_1 threshold for the per-channel innovation gate on trusted
  /// samples; <= 0 disables the gate (paper behaviour). When enabled, a
  /// sample whose jump from the last trusted value is a variance outlier on
  /// either channel is quarantined as a suspected stealth fault.
  double innovation_threshold = 0.0;
  std::size_t innovation_min_samples = 8;
  /// Consecutive innovation rejections tolerated before the monitor
  /// concludes the reference is stale (regime change or re-acquisition
  /// after target loss), resets both gates, and accepts the sample. Without
  /// a bound the gate can latch closed forever: rejected samples are never
  /// absorbed, so the variance never adapts. 0 = never resync.
  std::size_t innovation_max_consecutive_rejections = 8;
  /// Variance floors for the innovation gates, expressed as one-step
  /// innovation scales (squared internally). The simulated channels are
  /// smooth, so a learned variance alone can make an ordinary maneuver look
  /// like a 100-sigma event; the floors define the smallest per-step jump
  /// ever worth flagging.
  Meters innovation_floor_m{0.5};
  MetersPerSecond innovation_floor_mps{0.5};
  /// Consecutive bit-identical (distance, velocity) reports tolerated
  /// before the stream is declared frozen (stuck tracker, dead clock) and
  /// further repeats are quarantined; 0 = off. Real radar noise never
  /// repeats a sample exactly, so frozen-stream faults — whose innovation
  /// is exactly zero — are invisible to every other check.
  std::size_t max_identical_measurements = 0;

  /// Consecutive holdover (estimated) steps allowed before the pipeline
  /// declares DEGRADED_SAFE_STOP; 0 = unbounded (paper behaviour).
  std::size_t max_holdover_steps = 0;

  /// Unexpected-silence epochs (dropouts outside challenge slots) bridged
  /// with estimates before the target is declared lost; 0 = legacy
  /// behaviour (report no target immediately).
  std::size_t dropout_holdover_steps = 0;
};

/// Cumulative health counters, exposed for benches and traces.
struct HealthStats {
  std::size_t rejected_nonfinite = 0;    ///< NaN/Inf measurements blocked.
  std::size_t rejected_out_of_range = 0; ///< Physically impossible reports.
  std::size_t rejected_innovation = 0;   ///< Innovation-gate quarantines.
  std::size_t rejected_stuck = 0;        ///< Frozen-stream repeats blocked.
  std::size_t innovation_resyncs = 0;    ///< Gate re-syncs after latch-up.
  std::size_t predictor_resets = 0;      ///< Diverged free-runs re-trained.
  std::size_t safe_stop_entries = 0;     ///< DEGRADED_SAFE_STOP transitions.
  std::size_t bridged_dropouts = 0;      ///< Silent epochs held over.
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthOptions& options = {});

  enum class Verdict {
    kAccept,
    kRejectNonFinite,
    kRejectRange,
    kRejectStuck,
    kRejectInnovation,
  };

  /// Validates a coherent-echo report about to be trusted. On acceptance the
  /// innovation gates absorb the sample; rejected samples never touch gate
  /// state. `has_reference` supplies the last trusted values for the
  /// innovation check.
  Verdict validate(Meters distance, MetersPerSecond velocity,
                   bool has_reference, Meters last_distance,
                   MetersPerSecond last_velocity);

  /// True when a free-run prediction is finite and physically plausible;
  /// false means the predictor has diverged and must be re-trained.
  [[nodiscard]] bool prediction_ok(Meters distance,
                                   MetersPerSecond velocity) const;

  /// Accounts one estimated (holdover) step; enters safe stop once the
  /// budget is exhausted.
  void note_holdover_step();

  /// Accounts one trusted pass-through sample: clears the holdover run and,
  /// with `attack_over`, releases a latched safe stop.
  void note_trusted_sample(bool attack_over);

  void record_predictor_reset() { ++stats_.predictor_resets; }
  void record_bridged_dropout() { ++stats_.bridged_dropouts; }

  [[nodiscard]] bool safe_stop() const { return safe_stop_; }
  [[nodiscard]] std::size_t holdover_steps() const { return holdover_steps_; }
  [[nodiscard]] const HealthStats& stats() const { return stats_; }
  [[nodiscard]] const HealthOptions& options() const { return options_; }

  void reset();

 private:
  HealthOptions options_;
  estimation::InnovationGate distance_gate_;
  estimation::InnovationGate velocity_gate_;
  std::size_t innovation_streak_ = 0;  ///< Consecutive gate rejections.
  units::Meters prev_distance_{0.0};   ///< Frozen-stream tracking.
  units::MetersPerSecond prev_velocity_{0.0};
  bool has_prev_measurement_ = false;
  std::size_t identical_run_ = 0;
  std::size_t holdover_steps_ = 0;
  bool safe_stop_ = false;
  HealthStats stats_;
};

}  // namespace safe::core
