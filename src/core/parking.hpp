// Park-assist case study: CRA + RLS holdover on an ultrasonic (or lidar)
// time-of-flight sensor.
//
// A vehicle backs toward an obstacle under proportional speed control on
// the measured clearance. A delay-injection spoof makes the obstacle appear
// further away (the classic ultrasonic attack from the literature the paper
// cites), a DoS blinder floods the receiver. Same defense, different
// modality — demonstrating Section 5.2's claim that CRA applies to any
// active sensor.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "attack/window.hpp"
#include "cra/challenge.hpp"
#include "cra/detector.hpp"
#include "sensors/tof_sensor.hpp"
#include "sim/trace.hpp"

namespace safe::core {

struct ParkingAttack {
  enum class Kind { kSpoof, kDos };
  Kind kind = Kind::kSpoof;
  attack::AttackWindow window{};
  units::Meters spoof_offset_m{1.0};  ///< Apparent extra clearance.
  /// DoS noise power at the receiver. The default is strong enough that
  /// the echo cannot burn through anywhere inside the sensor's range
  /// window (a weaker blinder is defeated by the d^-4 echo growth at very
  /// short range — the sensor re-acquires and stops late but safely).
  double blinder_power_w = 1e-3;
};

struct ParkingConfig {
  sensors::TofSensorParameters sensor = sensors::ultrasonic_parameters();
  units::Meters initial_clearance_m{4.0};
  units::Meters stop_distance_m{0.35};
  double approach_gain = 0.8;      ///< v_cmd = gain * (d - stop), 1/s.
  units::MetersPerSecond max_speed_mps{0.6};
  units::Seconds sample_time_s{0.1};
  std::int64_t horizon_steps = 200;
  std::uint64_t seed = 1;
  bool defense_enabled = true;
  std::size_t min_training_samples = 6;
};

struct ParkingResult {
  sim::Trace trace;
  bool collided = false;                      ///< Clearance reached zero.
  units::Meters final_clearance_m{0.0};
  std::optional<std::int64_t> detection_step;
  cra::DetectionStats detection_stats;

  ParkingResult();
};

class ParkingSimulation {
 public:
  ParkingSimulation(ParkingConfig config,
                    std::shared_ptr<const cra::ChallengeSchedule> schedule,
                    std::optional<ParkingAttack> attack);

  ParkingResult run();

 private:
  ParkingConfig config_;
  std::shared_ptr<const cra::ChallengeSchedule> schedule_;
  std::optional<ParkingAttack> attack_;
};

}  // namespace safe::core
