#include "core/parking.hpp"

#include <algorithm>
#include <stdexcept>

#include "estimation/rls_predictor.hpp"

namespace safe::core {

namespace units = safe::units;

ParkingResult::ParkingResult()
    : trace({"time_s", "clearance_m", "measured_m", "used_m", "speed_mps",
             "challenge", "under_attack"}) {}

ParkingSimulation::ParkingSimulation(
    ParkingConfig config,
    std::shared_ptr<const cra::ChallengeSchedule> schedule,
    std::optional<ParkingAttack> attack)
    : config_(std::move(config)),
      schedule_(std::move(schedule)),
      attack_(std::move(attack)) {
  if (!schedule_) {
    throw std::invalid_argument("ParkingSimulation: null schedule");
  }
  if (config_.initial_clearance_m <= config_.stop_distance_m) {
    throw std::invalid_argument("ParkingSimulation: nothing to approach");
  }
  if (config_.sample_time_s <= units::Seconds{0.0} ||
      config_.horizon_steps <= 0) {
    throw std::invalid_argument("ParkingSimulation: bad time base");
  }
  if (config_.approach_gain <= 0.0 ||
      config_.max_speed_mps <= units::MetersPerSecond{0.0}) {
    throw std::invalid_argument("ParkingSimulation: bad controller");
  }
}

ParkingResult ParkingSimulation::run() {
  sensors::TofSensor sensor(config_.sensor, config_.seed);
  cra::ChallengeResponseDetector detector;
  estimation::RlsArPredictor predictor;
  std::size_t trained = 0;
  double last_trusted = config_.initial_clearance_m.value();

  // Rollback snapshot at verified-clean challenges (same policy as the
  // radar pipeline).
  estimation::RlsArPredictor snapshot = predictor;
  std::size_t snapshot_trained = 0;
  double snapshot_last = last_trusted;
  std::int64_t snapshot_step = -1;

  double clearance = config_.initial_clearance_m.value();
  ParkingResult result;

  for (std::int64_t k = 0; k < config_.horizon_steps; ++k) {
    const double t = static_cast<double>(k) * config_.sample_time_s.value();
    const bool challenge = schedule_->is_challenge(k);
    // Post-collision the run is frozen and the attacker stops radiating;
    // scoring must match what actually reaches the receiver.
    const bool attack_active =
        attack_ &&
        attack_->window.contains(units::Seconds{static_cast<double>(k)}) &&
        !result.collided;

    // --- Acoustic/optical scene.
    radar::EchoScene scene;
    scene.tx_enabled = !challenge;
    scene.noise_power_w = config_.sensor.noise_floor_w;
    const bool in_window = clearance >= config_.sensor.min_range_m.value() &&
                           clearance <= config_.sensor.max_range_m.value();
    if (scene.tx_enabled && in_window && !result.collided) {
      scene.echoes.push_back(radar::EchoComponent{
          .distance_m = units::Meters{clearance},
          .range_rate_mps = units::MetersPerSecond{0.0},
          .power_w = 0.0,  // sensor's own link budget
      });
    }
    if (attack_active && !result.collided) {
      if (attack_->kind == ParkingAttack::Kind::kSpoof) {
        // Counterfeit replaces the genuine echo and persists through
        // challenge slots (replay latency, Section 5.2).
        scene.echoes.clear();
        scene.echoes.push_back(radar::EchoComponent{
            .distance_m =
                units::Meters{clearance} + attack_->spoof_offset_m,
            .range_rate_mps = units::MetersPerSecond{0.0},
            .power_w = 10.0 * sensors::tof_received_power_w(
                                  config_.sensor,
                                  units::max(units::Meters{clearance},
                                             config_.sensor.min_range_m)),
        });
      } else {
        scene.noise_power_w += attack_->blinder_power_w;
      }
    }

    const auto meas = sensor.measure(scene);
    const auto decision = detector.observe_scored(
        k, challenge, meas.nonzero_output(), attack_active);

    if (decision.attack_started && snapshot_step >= 0 &&
        config_.defense_enabled) {
      predictor = snapshot;
      trained = snapshot_trained;
      last_trusted = snapshot_last;
      for (std::int64_t j = snapshot_step + 1; j < k; ++j) {
        last_trusted = std::max(predictor.predict_next(), 0.0);
      }
    }

    // --- Clearance estimate consumed by the controller.
    double used;
    if (config_.defense_enabled && (decision.under_attack || challenge)) {
      if (trained >= config_.min_training_samples) {
        used = std::max(predictor.predict_next(), 0.0);
      } else {
        used = last_trusted;
      }
      if (challenge && !decision.under_attack && !decision.attack_started) {
        snapshot = predictor;
        snapshot_trained = trained;
        snapshot_last = last_trusted;
        snapshot_step = k;
      }
    } else if (meas.target_detected) {
      used = meas.distance_m.value();
      if (config_.defense_enabled) {
        predictor.observe(used);
        ++trained;
      }
      last_trusted = used;
    } else {
      // Blind epoch (challenge without defense, dropout, or jam): hold.
      used = last_trusted;
    }

    // --- Proportional approach control.
    const double v_cmd = std::clamp(
        config_.approach_gain * (used - config_.stop_distance_m.value()), 0.0,
        config_.max_speed_mps.value());
    if (!result.collided) {
      clearance -= v_cmd * config_.sample_time_s.value();
      if (clearance <= 0.0) {
        clearance = 0.0;
        result.collided = true;
      }
    }

    result.trace.append_row(
        {t, clearance, meas.target_detected ? meas.distance_m.value() : 0.0,
         used, v_cmd, challenge ? 1.0 : 0.0,
         decision.under_attack ? 1.0 : 0.0});
  }

  result.final_clearance_m = units::Meters{clearance};
  result.detection_step = detector.detection_step();
  result.detection_stats = detector.stats();
  return result;
}

}  // namespace safe::core
