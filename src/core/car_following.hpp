// Closed-loop car-following simulation (paper Figure 1 and Section 6).
//
// leader kinematics -> RF scene -> (attack) -> CRA radar -> safe-measurement
// pipeline -> ACC hierarchy -> follower kinematics, sampled at T = 1 s.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "attack/attack.hpp"
#include "control/acc.hpp"
#include "control/idm.hpp"
#include "core/pipeline.hpp"
#include "cra/challenge.hpp"
#include "fault/schedule.hpp"
#include "radar/processor.hpp"
#include "sim/trace.hpp"
#include "vehicle/leader_profile.hpp"
#include "vehicle/longitudinal.hpp"

namespace safe::core {

/// Which longitudinal controller drives the follower.
enum class FollowerController {
  kAccHierarchy,  ///< The paper's upper/lower-level ACC (default).
  kIdm,           ///< Plain intelligent-driver model (baseline).
};

struct CarFollowingConfig {
  /// Initial speeds (paper: leader 65 mph, follower set speed 67 mph).
  units::MetersPerSecond leader_speed_mps{29.0576};
  units::MetersPerSecond follower_speed_mps{29.0576};
  units::Meters initial_gap_m{100.0};
  std::int64_t horizon_steps = 300;
  units::Seconds sample_time_s{1.0};
  double target_rcs_m2 = 10.0;

  FollowerController controller = FollowerController::kAccHierarchy;
  control::AccParameters acc{};
  control::IdmParameters idm{};
  radar::RadarProcessorConfig radar{};

  /// Radar noise seed (kept distinct per run for without/with comparisons).
  std::uint64_t seed = 1;

  /// Feed raw (possibly corrupted) radar data to the ACC instead of the
  /// pipeline output. The "RadarData-With-Attack" failure traces of
  /// Figures 2-3 are produced with the defense disabled.
  bool defense_enabled = true;

  /// Safe-measurement pipeline configuration (defaults reproduce the paper;
  /// see hardened_pipeline_options for the fault-robust profile).
  PipelineOptions pipeline{};

  /// Optional sensor-fault schedule applied to the radar measurement stream
  /// between receiver and pipeline (null/empty = no faults). The simulation
  /// copies the schedule so repeated runs start from identical state.
  std::shared_ptr<const fault::FaultSchedule> faults;
};

/// Everything recorded about one simulation run.
struct CarFollowingResult {
  sim::Trace trace;
  bool collided = false;
  std::optional<std::int64_t> collision_step;
  std::optional<std::int64_t> detection_step;
  cra::DetectionStats detection_stats;
  units::Meters min_gap_m{0.0};
  /// Health / degradation outcome of the run.
  HealthStats health_stats;
  std::size_t safe_stop_steps = 0;       ///< Steps spent in DEGRADED_SAFE_STOP.
  /// Controller epochs whose selected distance/velocity inputs were not
  /// finite. Must be zero whenever the defense pipeline is enabled — the
  /// whole point of the health monitor.
  std::size_t nonfinite_controller_inputs = 0;

  CarFollowingResult() : trace(columns()) {}

  /// Trace column names, in order.
  static std::vector<std::string> columns();
};

class CarFollowingSimulation {
 public:
  /// `attack` may be nullptr (clean run). `schedule` drives both the radar's
  /// probe gating and the pipeline's detector.
  CarFollowingSimulation(CarFollowingConfig config,
                         std::shared_ptr<const vehicle::LeaderProfile> leader,
                         std::shared_ptr<const attack::AttackModel> attack,
                         std::shared_ptr<const cra::ChallengeSchedule> schedule);

  /// Runs the full horizon and returns the recorded result. Stops stepping
  /// vehicles after a collision (gap <= 0) but keeps recording rows so all
  /// traces have `horizon_steps` rows.
  CarFollowingResult run();

 private:
  CarFollowingConfig config_;
  std::shared_ptr<const vehicle::LeaderProfile> leader_profile_;
  std::shared_ptr<const attack::AttackModel> attack_;
  std::shared_ptr<const cra::ChallengeSchedule> schedule_;
};

}  // namespace safe::core
