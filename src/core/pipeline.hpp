// SafeMeasurementPipeline: the paper's contribution glued together
// (Algorithm 2 end to end).
//
// Per sample instant the pipeline
//   1. gates the radar probe through the CRA modulator (m(t) p(t)),
//   2. compares the receiver output against the expected silence at
//      challenge slots (detection, Algorithm 2 lines 7-9),
//   3. while clean, passes measurements through and trains one RLS
//      predictor per channel (distance, relative velocity),
//   4. while under attack, replaces the corrupted radar data with RLS
//      free-run estimates (Algorithm 1) so the controller keeps receiving
//      plausible inputs, and
//   5. clears the attack state when a challenge comes back silent.
//
// Beyond the paper, a HealthMonitor degrades the pipeline gracefully under
// sensor faults: it validates every measurement, quarantines innovation
// outliers, re-trains diverged predictors, debounces flapping clearance, and
// bounds the holdover budget — entering an explicit DEGRADED_SAFE_STOP state
// instead of free-running on stale estimates forever.
#pragma once

#include <cstdint>
#include <memory>

#include <string>

#include "core/health_monitor.hpp"
#include "cra/detector.hpp"
#include "cra/modulator.hpp"
#include "detect/backend.hpp"
#include "estimation/series_predictor.hpp"
#include "radar/processor.hpp"

namespace safe::core {

/// What the pipeline hands to the controller each step.
struct SafeMeasurement {
  bool target_present = false;     ///< Controller should track a target.
  Meters distance_m{0.0};          ///< d (measured or estimated)
  MetersPerSecond relative_velocity_mps{0.0};  ///< dv (estimated or not)
  bool estimated = false;          ///< Values came from the RLS holdover.
  bool under_attack = false;       ///< Detector state after this step.
  bool challenge_slot = false;     ///< Probe was suppressed this step.
  bool attack_started = false;
  bool attack_cleared = false;

  /// Degradation machine state after this step (see health_monitor.hpp).
  DegradationState degradation = DegradationState::kClean;
  /// Convenience: degradation == kSafeStop. Controllers switch to the
  /// conservative deceleration profile while set.
  bool safe_stop = false;
  /// The health monitor quarantined this epoch's radar report.
  bool measurement_rejected = false;
  /// Consecutive estimated steps so far (0 while passing through).
  std::size_t holdover_steps = 0;
};

struct PipelineOptions {
  /// Minimum consecutive trusted samples before estimates are considered
  /// trained enough to substitute for measurements.
  std::size_t min_training_samples = 8;
  /// Snapshot predictor state at every verified-clean challenge slot and
  /// roll back to it on detection. Samples recorded between attack onset
  /// and the detecting challenge are thereby quarantined: a stealthy offset
  /// injected just before detection cannot bias the holdover estimates.
  bool rollback_on_detection = true;
  /// Measurement validation, innovation gating, holdover budget.
  HealthOptions health{};
  /// Detector debounce (clearance after M consecutive silent challenges).
  /// Applies to the CRA backend (the default and any `cra` spec without a
  /// clear= override).
  cra::DetectorOptions detector{};
  /// Detection backend (detect::make_detector mini-language). Empty selects
  /// the paper's challenge-response detector — bit-identical to the
  /// pre-backend pipeline.
  std::string detector_spec;
};

/// Pipeline options hardened for deployments that must degrade gracefully
/// under compound sensor faults: innovation gate on, clearance debounced
/// over 2 silent challenges, bounded holdover, short dropout bridging. The
/// default-constructed PipelineOptions reproduce the paper exactly; these
/// trade a little fidelity for fault robustness (the fault-matrix bench
/// sweeps them).
[[nodiscard]] PipelineOptions hardened_pipeline_options(
    std::size_t max_holdover_steps = 15);

class SafeMeasurementPipeline {
 public:
  /// The pipeline owns its detector state (backend built from
  /// options.detector_spec; throws std::invalid_argument on a bad spec);
  /// the modulator is shared with the simulation (which uses it to gate the
  /// transmitter), and the two predictors are injected so benches can swap
  /// estimators.
  SafeMeasurementPipeline(std::shared_ptr<const cra::ChallengeSchedule> schedule,
                          estimation::SeriesPredictorPtr distance_predictor,
                          estimation::SeriesPredictorPtr velocity_predictor,
                          const PipelineOptions& options = {});

  /// True when the transmitter must stay silent at `step` (challenge slot).
  [[nodiscard]] bool probe_suppressed(std::int64_t step) const;

  /// Consumes the radar output for `step` and produces the safe measurement.
  SafeMeasurement process(std::int64_t step,
                          const radar::RadarMeasurement& measurement);

  /// Same as process, with ground-truth attack activity for FP/FN scoring.
  SafeMeasurement process_scored(std::int64_t step,
                                 const radar::RadarMeasurement& measurement,
                                 bool attack_actually_active);

  [[nodiscard]] bool under_attack() const { return detector_->under_attack(); }
  [[nodiscard]] std::optional<std::int64_t> detection_step() const {
    return detector_->detection_step();
  }
  [[nodiscard]] const cra::DetectionStats& detection_stats() const {
    return detector_->stats();
  }
  /// Canonical name of the active detection backend ("cra", "chi2", ...).
  [[nodiscard]] std::string detector_name() const {
    return detector_->name();
  }
  [[nodiscard]] const cra::ChallengeSchedule& schedule() const {
    return modulator_.schedule();
  }
  [[nodiscard]] const HealthStats& health_stats() const {
    return health_.stats();
  }
  [[nodiscard]] DegradationState degradation() const { return degradation_; }

  void reset();

 private:
  SafeMeasurement finish(std::int64_t step,
                         const radar::RadarMeasurement& measurement,
                         const detect::Verdict& decision);

  /// Packs one radar epoch into the backend-agnostic observation.
  [[nodiscard]] detect::Observation make_observation(
      std::int64_t step, const radar::RadarMeasurement& measurement) const;

  /// Trusted-history bookkeeping shared between live and snapshot state.
  struct TrustedState {
    std::size_t trained_samples = 0;
    bool had_target = false;
    units::Meters last_distance{0.0};
    units::MetersPerSecond last_velocity{0.0};
  };

  void take_snapshot(std::int64_t step);
  void restore_snapshot(std::int64_t detection_step);

  /// Free-runs both predictors one step with divergence protection; updates
  /// `out` and the trusted state.
  void hold_over(SafeMeasurement& out, bool can_estimate);

  cra::ProbeModulator modulator_;
  detect::DetectorBackendPtr detector_;
  estimation::SeriesPredictorPtr distance_predictor_;
  estimation::SeriesPredictorPtr velocity_predictor_;
  PipelineOptions options_;
  TrustedState state_;
  HealthMonitor health_;
  DegradationState degradation_ = DegradationState::kClean;
  std::size_t silent_run_ = 0;  ///< Consecutive unexpected-silence epochs.

  estimation::SeriesPredictorPtr snapshot_distance_;
  estimation::SeriesPredictorPtr snapshot_velocity_;
  TrustedState snapshot_state_;
  std::optional<std::int64_t> snapshot_step_;
};

/// Builds the paper's default pipeline: RLS-AR predictors on both channels
/// over the given schedule.
SafeMeasurementPipeline make_default_pipeline(
    std::shared_ptr<const cra::ChallengeSchedule> schedule,
    const PipelineOptions& options = {});

}  // namespace safe::core
