// Canonical paper scenarios (Section 6.2) ready to run.
#pragma once

#include <memory>
#include <string>

#include "attack/attack.hpp"
#include "core/car_following.hpp"
#include "cra/challenge.hpp"
#include "radar/link_budget.hpp"
#include "vehicle/leader_profile.hpp"

namespace safe::core {

enum class LeaderScenario {
  kConstantDecel,  ///< Scenario (i): -0.1082 m/s^2 throughout.
  kDecelThenAccel, ///< Scenario (ii): -0.1082 then +0.012 m/s^2.
};

enum class AttackKind {
  kNone,
  kDosJammer,       ///< Section 6.2 jammer: 100 mW, 10 dBi, 155 MHz.
  kDelayInjection,  ///< +6 m counterfeit echo.
};

struct ScenarioOptions {
  LeaderScenario leader = LeaderScenario::kConstantDecel;
  AttackKind attack = AttackKind::kNone;
  /// Paper timings: DoS begins at k = 182, delay injection at k = 180; both
  /// persist to the end of the 300 s horizon.
  units::Seconds attack_start_s{182.0};
  units::Seconds attack_end_s{300.0};
  bool defense_enabled = true;
  /// Periodogram is ~20x faster than root-MUSIC with nearly identical
  /// closed-loop behaviour; tests use it, benches reproduce the paper with
  /// root-MUSIC.
  radar::BeatEstimator estimator = radar::BeatEstimator::kRootMusic;
  std::uint64_t seed = 1;
  std::int64_t horizon_steps = 300;
  /// Safe-measurement pipeline configuration (paper defaults).
  PipelineOptions pipeline{};
  /// Sensor-fault schedule in the `--fault` spec language (see
  /// fault/schedule.hpp); empty or "none" = no injected faults.
  std::string fault_spec{};
  /// DoS jammer link-budget parameters (paper Section 6.2 defaults); only
  /// consulted when `attack == kDosJammer`. Campaign sweeps vary
  /// `peak_power_w` to map the jamming-effectiveness boundary.
  radar::JammerParameters jammer{};
  /// Platoon spec in the `--platoon` mini-language (see platoon/spec.hpp).
  /// Empty or "none" = the single leader-follower pair. core:: itself never
  /// parses this; platoon::make_paper_platoon and the campaign engine do.
  std::string platoon_spec{};
  /// Attack in the `--attack` mini-language (see attack/spec.hpp). When it
  /// names an attack it wins over the legacy `attack` enum; a bare "dos"
  /// spec inherits this scenario's `jammer` link budget, and the entrainment
  /// attacker's jitter stream derives from `seed`. Empty or "none" = fall
  /// back to the enum.
  std::string attack_spec{};
};

/// Rejects impossible option combinations with std::invalid_argument:
/// an attack window that ends before it starts, or a non-positive horizon
/// (both would otherwise silently simulate nothing). Called by
/// make_paper_scenario; exposed for CLIs that assemble options piecemeal.
void validate(const ScenarioOptions& options);

/// Assembled simulation pieces for one run.
struct Scenario {
  CarFollowingConfig config;
  std::shared_ptr<const vehicle::LeaderProfile> leader;
  std::shared_ptr<const attack::AttackModel> attack;  ///< may be null
  std::shared_ptr<const cra::ChallengeSchedule> schedule;

  [[nodiscard]] CarFollowingResult run() const {
    return CarFollowingSimulation(config, leader, attack, schedule).run();
  }
};

/// Builds the paper's case study: 65 mph leader, 67 mph set-speed follower,
/// 100 m initial gap, Bosch-LRR2 radar with CRA modulation, challenges at
/// {15, 50, 175, 182, 189, ...}.
Scenario make_paper_scenario(const ScenarioOptions& options = {});

}  // namespace safe::core
