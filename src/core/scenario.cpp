#include "core/scenario.hpp"

#include <stdexcept>
#include <string>

#include "attack/delay_injection.hpp"
#include "attack/dos_jammer.hpp"
#include "attack/spec.hpp"
#include "attack/window.hpp"
#include "radar/link_budget.hpp"
#include "units/units.hpp"

namespace safe::core {

namespace units = safe::units;

void validate(const ScenarioOptions& options) {
  if (options.horizon_steps <= 0) {
    throw std::invalid_argument(
        "ScenarioOptions: horizon_steps must be positive, got " +
        std::to_string(options.horizon_steps));
  }
  if (attack::attack_spec_enabled(options.attack_spec)) {
    const attack::SpecCheck check =
        attack::check_attack_spec(options.attack_spec);
    if (check.status != attack::SpecStatus::kOk) {
      throw std::invalid_argument("ScenarioOptions: " + check.message);
    }
  }
  if ((options.attack != AttackKind::kNone ||
       attack::attack_spec_enabled(options.attack_spec)) &&
      options.attack_end_s < options.attack_start_s) {
    throw std::invalid_argument(
        "ScenarioOptions: attack_end_s (" +
        std::to_string(options.attack_end_s.value()) +
        " s) precedes attack_start_s (" +
        std::to_string(options.attack_start_s.value()) +
        " s); the attack window would be empty");
  }
}

Scenario make_paper_scenario(const ScenarioOptions& options) {
  validate(options);
  Scenario s;

  s.config.leader_speed_mps = units::from_mph(65.0);
  s.config.follower_speed_mps = units::from_mph(65.0);
  s.config.initial_gap_m = units::Meters{100.0};
  s.config.horizon_steps = options.horizon_steps;
  s.config.sample_time_s = units::Seconds{1.0};
  s.config.seed = options.seed;
  s.config.defense_enabled = options.defense_enabled;
  s.config.pipeline = options.pipeline;
  if (!options.fault_spec.empty() && options.fault_spec != "none") {
    s.config.faults = std::make_shared<fault::FaultSchedule>(
        fault::parse_fault_spec(options.fault_spec, options.seed));
  }

  s.config.acc.set_speed_mps = units::from_mph(67.0);
  // A bounded holdover budget is the graceful-degradation opt-in; pair it
  // with the conservative controller policy so a drifting free-run (or a
  // dead sensor reporting "no target") cannot command acceleration.
  s.config.acc.hold_speed_on_degraded_holdover =
      options.pipeline.health.max_holdover_steps > 0;
  if (options.pipeline.health.max_holdover_steps > 0) {
    s.config.acc.emergency_headway_s = units::Seconds{0.5};
  }

  s.config.radar.waveform = radar::bosch_lrr2_parameters();
  s.config.radar.estimator = options.estimator;
  s.config.radar.noise_floor_w =
      radar::thermal_noise_power_w(s.config.radar.waveform);

  switch (options.leader) {
    case LeaderScenario::kConstantDecel:
      s.leader = std::make_shared<vehicle::ConstantDecelProfile>();
      break;
    case LeaderScenario::kDecelThenAccel:
      s.leader = std::make_shared<vehicle::DecelThenAccelProfile>();
      break;
  }

  std::shared_ptr<attack::AttackModel> inner;
  if (attack::attack_spec_enabled(options.attack_spec)) {
    // Spec language wins over the legacy enum; bare "dos" inherits the
    // scenario's jammer link budget so the campaign power axis composes.
    inner =
        attack::make_attack(options.attack_spec, options.jammer, options.seed);
  } else {
    switch (options.attack) {
      case AttackKind::kNone:
        break;
      case AttackKind::kDosJammer:
        inner = std::make_shared<attack::DosJammerAttack>(options.jammer);
        break;
      case AttackKind::kDelayInjection:
        inner = std::make_shared<attack::DelayInjectionAttack>(
            attack::DelayInjectionConfig{});
        break;
    }
  }
  if (inner) {
    s.attack = std::make_shared<attack::ScheduledAttack>(
        std::move(inner), attack::AttackWindow{options.attack_start_s,
                                               options.attack_end_s});
  }

  s.schedule = std::make_shared<cra::FixedChallengeSchedule>(
      cra::paper_challenge_schedule(options.horizon_steps));
  return s;
}

}  // namespace safe::core
