#include "core/car_following.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "radar/link_budget.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::core {

namespace units = safe::units;

namespace {

// The controller stage is the tail of the per-step chain (modulate ->
// channel -> demodulate/CFAR -> CRA check -> RLS -> ACC); the radar and
// pipeline stages carry their own spans, this closes the profile.
const telemetry::MetricId& controller_ns_metric() {
  static const telemetry::MetricId id =
      telemetry::duration_histogram("control.step_ns");
  return id;
}

}  // namespace

std::vector<std::string> CarFollowingResult::columns() {
  return {
      "time_s",       "true_gap_m",  "true_dv_mps",  "meas_gap_m",
      "meas_dv_mps",  "safe_gap_m",  "safe_dv_mps",  "leader_v_mps",
      "follower_v_mps", "follower_a_mps2", "challenge", "under_attack",
      "estimated",    "collided",    "degradation",  "holdover",
  };
}

CarFollowingSimulation::CarFollowingSimulation(
    CarFollowingConfig config,
    std::shared_ptr<const vehicle::LeaderProfile> leader,
    std::shared_ptr<const attack::AttackModel> attack,
    std::shared_ptr<const cra::ChallengeSchedule> schedule)
    : config_(std::move(config)),
      leader_profile_(std::move(leader)),
      attack_(std::move(attack)),
      schedule_(std::move(schedule)) {
  if (!leader_profile_) {
    throw std::invalid_argument("CarFollowingSimulation: null leader profile");
  }
  if (!schedule_) {
    throw std::invalid_argument("CarFollowingSimulation: null schedule");
  }
  if (config_.horizon_steps <= 0 ||
      config_.sample_time_s <= units::Seconds{0.0}) {
    throw std::invalid_argument("CarFollowingSimulation: bad horizon/T");
  }
  if (config_.initial_gap_m <= units::Meters{0.0}) {
    throw std::invalid_argument("CarFollowingSimulation: bad initial gap");
  }
}

CarFollowingResult CarFollowingSimulation::run() {
  const units::Seconds t_sample = config_.sample_time_s;
  const radar::FmcwParameters& wf = config_.radar.waveform;

  radar::RadarProcessor radar(config_.radar, config_.seed);
  SafeMeasurementPipeline pipeline =
      make_default_pipeline(schedule_, config_.pipeline);
  control::AccController acc(config_.acc);

  // Local copy of the fault schedule: stream state (stuck frames, challenge
  // counts) is per-run.
  fault::FaultSchedule faults =
      config_.faults ? *config_.faults : fault::FaultSchedule{};
  faults.reset();

  // Per-run clone of the attack model: entrainment-style attacks carry a
  // lock-on state machine, and repeated run() calls must start it fresh.
  std::unique_ptr<attack::AttackModel> attack =
      attack_ ? attack_->clone() : nullptr;
  if (attack) attack->reset();

  vehicle::VehicleState leader{.position_m = config_.initial_gap_m,
                               .velocity_mps = config_.leader_speed_mps};
  vehicle::VehicleState follower{.position_m = units::Meters{0.0},
                                 .velocity_mps = config_.follower_speed_mps};

  CarFollowingResult result;
  result.min_gap_m = config_.initial_gap_m;

  // Undefended runs still need target tracking across challenge slots and
  // dropouts: a real radar holds its last track briefly.
  units::Meters held_gap = config_.initial_gap_m;
  units::MetersPerSecond held_dv = vehicle::relative_velocity(leader, follower);
  bool held_valid = false;

  for (std::int64_t k = 0; k < config_.horizon_steps; ++k) {
    const units::Seconds t = static_cast<double>(k) * t_sample;

    // --- Leader dynamics (Eq. 15).
    if (!result.collided) {
      leader = vehicle::step(leader, leader_profile_->acceleration(t),
                             t_sample);
    }

    const units::Meters true_gap = vehicle::gap(leader, follower);
    const units::MetersPerSecond true_dv =
        vehicle::relative_velocity(leader, follower);

    // --- RF scene: genuine echo if the probe radiates and the target is in
    // the radar's range window.
    radar::EchoScene scene;
    scene.tx_enabled = !pipeline.probe_suppressed(k);
    scene.noise_power_w = config_.radar.noise_floor_w;
    const bool in_window =
        true_gap >= wf.min_range_m && true_gap <= wf.max_range_m;
    double echo_power = 0.0;
    if (scene.tx_enabled && in_window && !result.collided) {
      echo_power =
          radar::received_echo_power_w(wf, true_gap, config_.target_rcs_m2);
      scene.echoes.push_back(radar::EchoComponent{
          .distance_m = true_gap,
          .range_rate_mps = true_dv,
          .power_w = echo_power,
      });
    } else if (in_window && !result.collided) {
      echo_power =
          radar::received_echo_power_w(wf, true_gap, config_.target_rcs_m2);
    }

    bool attack_active = false;
    if (attack && !result.collided) {
      const attack::AttackContext ctx{
          .time_s = t,
          .step = k,
          .true_distance_m = true_gap,
          .true_range_rate_mps = true_dv,
          .true_echo_power_w = echo_power,
          .waveform = &wf,
      };
      attack_active = attack->apply(ctx, scene);
    }

    // --- Radar receiver (+ post-digitization sensor faults, if scheduled).
    radar::RadarMeasurement meas = radar.measure(scene);
    if (!faults.empty()) {
      meas = faults.apply(k, pipeline.probe_suppressed(k), meas);
    }

    // --- Defense pipeline (Algorithm 2).
    const SafeMeasurement safe =
        pipeline.process_scored(k, meas, attack_active);
    if (safe.safe_stop) ++result.safe_stop_steps;

    // --- Controller input selection.
    control::AccInputs inputs;
    inputs.follower_speed_mps = follower.velocity_mps;
    if (config_.defense_enabled) {
      inputs.target_present = safe.target_present;
      inputs.distance_m = safe.distance_m;
      inputs.relative_velocity_mps = safe.relative_velocity_mps;
      inputs.degraded_safe_stop = safe.safe_stop;
      inputs.degraded_holdover =
          safe.degradation == DegradationState::kHoldover;
    } else {
      // Raw radar consumer with a one-epoch track hold across dropouts.
      if (meas.coherent_echo) {
        held_gap = meas.estimate.distance_m;
        held_dv = meas.estimate.range_rate_mps;
        held_valid = true;
      }
      inputs.target_present = held_valid;
      inputs.distance_m = held_gap;
      inputs.relative_velocity_mps = held_dv;
    }

    // Audit what the controller is about to consume: with the defense on,
    // the health monitor must have filtered every non-finite value.
    if (inputs.target_present &&
        (!std::isfinite(inputs.distance_m.value()) ||
         !std::isfinite(inputs.relative_velocity_mps.value()))) {
      ++result.nonfinite_controller_inputs;
    }

    // --- Follower controller + dynamics (Eqs. 13-17, or IDM baseline).
    units::MetersPerSecond2 follower_accel;
    {
      telemetry::ScopedTimer span("acc.step", "control",
                                  controller_ns_metric(),
                                  telemetry::TraceDetail::kFine);
      span.arg("step", k);
      if (config_.controller == FollowerController::kAccHierarchy) {
        follower_accel = acc.step(inputs).actuation.actual_accel_mps2;
      } else {
        follower_accel =
            inputs.target_present
                ? control::idm_acceleration(
                      config_.idm, follower.velocity_mps,
                      follower.velocity_mps + inputs.relative_velocity_mps,
                      inputs.distance_m)
                : control::idm_free_acceleration(config_.idm,
                                                 follower.velocity_mps);
      }
    }
    if (!result.collided) {
      follower = vehicle::step(follower, follower_accel, t_sample);
    }

    const units::Meters gap_after = vehicle::gap(leader, follower);
    result.min_gap_m = units::min(result.min_gap_m, gap_after);
    if (!result.collided && gap_after <= units::Meters{0.0}) {
      result.collided = true;
      result.collision_step = k;
    }

    // The recorded radar output is zero when the receiver saw nothing
    // (challenge slots in clean runs: the zero-spikes of Figures 2-3), and
    // the possibly-corrupted estimate whenever anything radiated.
    const bool receiver_output = meas.nonzero_output();
    result.trace.append_row({
        t.value(),
        true_gap.value(),
        true_dv.value(),
        receiver_output ? meas.estimate.distance_m.value() : 0.0,
        receiver_output ? meas.estimate.range_rate_mps.value() : 0.0,
        safe.distance_m.value(),
        safe.relative_velocity_mps.value(),
        leader.velocity_mps.value(),
        follower.velocity_mps.value(),
        follower.acceleration_mps2.value(),
        safe.challenge_slot ? 1.0 : 0.0,
        safe.under_attack ? 1.0 : 0.0,
        safe.estimated ? 1.0 : 0.0,
        result.collided ? 1.0 : 0.0,
        static_cast<double>(safe.degradation),
        static_cast<double>(safe.holdover_steps),
    });
  }

  result.detection_step = pipeline.detection_step();
  result.detection_stats = pipeline.detection_stats();
  result.health_stats = pipeline.health_stats();
  return result;
}

}  // namespace safe::core
