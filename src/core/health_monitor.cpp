#include "core/health_monitor.hpp"

#include <cmath>

#include "telemetry/telemetry.hpp"

namespace safe::core {

namespace units = safe::units;

namespace {

// Global mirrors of the per-run HealthStats tallies: cumulative across every
// monitor instance, so a campaign's merged view is one JSONL line instead of
// N trial records. All are pure functions of the processed sample streams.
struct HealthMetrics {
  telemetry::MetricId rejected_nonfinite =
      telemetry::counter("health.rejected_nonfinite");
  telemetry::MetricId rejected_out_of_range =
      telemetry::counter("health.rejected_out_of_range");
  telemetry::MetricId rejected_innovation =
      telemetry::counter("health.rejected_innovation");
  telemetry::MetricId rejected_stuck =
      telemetry::counter("health.rejected_stuck");
  telemetry::MetricId innovation_resyncs =
      telemetry::counter("health.innovation_resyncs");
  telemetry::MetricId safe_stop_entries =
      telemetry::counter("health.safe_stop_entries");
};

const HealthMetrics& health_metrics() {
  static const HealthMetrics m;
  return m;
}

}  // namespace

const char* to_string(DegradationState state) {
  switch (state) {
    case DegradationState::kClean: return "clean";
    case DegradationState::kUnderAttack: return "under-attack";
    case DegradationState::kHoldover: return "holdover";
    case DegradationState::kSafeStop: return "safe-stop";
  }
  return "unknown";
}

namespace {

estimation::InnovationGate::Options gate_options(const HealthOptions& o,
                                                 double innovation_floor) {
  estimation::InnovationGate::Options g;
  g.threshold = o.innovation_threshold;
  g.min_samples = o.innovation_min_samples;
  g.variance_floor =
      std::max(innovation_floor * innovation_floor, 1e-12);
  return g;
}

}  // namespace

HealthMonitor::HealthMonitor(const HealthOptions& options)
    : options_(options),
      distance_gate_(
          gate_options(options, options.innovation_floor_m.value())),
      velocity_gate_(
          gate_options(options, options.innovation_floor_mps.value())) {}

HealthMonitor::Verdict HealthMonitor::validate(Meters distance,
                                               MetersPerSecond velocity,
                                               bool has_reference,
                                               Meters last_distance,
                                               MetersPerSecond last_velocity) {
  const double distance_m = distance.value();
  const double velocity_mps = velocity.value();
  if (options_.validate_measurements) {
    if (!std::isfinite(distance_m) || !std::isfinite(velocity_mps)) {
      ++stats_.rejected_nonfinite;
      telemetry::add(health_metrics().rejected_nonfinite);
      return Verdict::kRejectNonFinite;
    }
    if (!units::plausible_range(distance, options_.max_range_m) ||
        !units::plausible_speed(velocity, options_.max_speed_mps)) {
      ++stats_.rejected_out_of_range;
      telemetry::add(health_metrics().rejected_out_of_range);
      return Verdict::kRejectRange;
    }
  }
  if (options_.max_identical_measurements > 0) {
    // Frozen-stream check on the raw report stream: exact repeats beyond
    // what noise could ever produce mean a stuck tracker or a dead clock.
    if (has_prev_measurement_ && distance == prev_distance_ &&
        velocity == prev_velocity_) {
      ++identical_run_;
    } else {
      identical_run_ = 0;
    }
    prev_distance_ = distance;
    prev_velocity_ = velocity;
    has_prev_measurement_ = true;
    if (identical_run_ >= options_.max_identical_measurements) {
      ++stats_.rejected_stuck;
      telemetry::add(health_metrics().rejected_stuck);
      return Verdict::kRejectStuck;
    }
  }
  if (options_.innovation_threshold > 0.0 && has_reference) {
    // Gate both channels; feed the second gate regardless so its variance
    // estimate tracks even when the first channel rejects.
    const bool d_outlier =
        distance_gate_.observe(distance_m - last_distance.value());
    const bool v_outlier =
        velocity_gate_.observe(velocity_mps - last_velocity.value());
    if (d_outlier || v_outlier) {
      ++innovation_streak_;
      if (options_.innovation_max_consecutive_rejections > 0 &&
          innovation_streak_ >
              options_.innovation_max_consecutive_rejections) {
        // Everything has been "an outlier" for a while: the reference is
        // stale (regime change, re-acquired target), not the data. Re-sync
        // on this sample with fresh gates.
        distance_gate_.reset();
        velocity_gate_.reset();
        innovation_streak_ = 0;
        ++stats_.innovation_resyncs;
        telemetry::add(health_metrics().innovation_resyncs);
        return Verdict::kAccept;
      }
      ++stats_.rejected_innovation;
      telemetry::add(health_metrics().rejected_innovation);
      return Verdict::kRejectInnovation;
    }
    innovation_streak_ = 0;
  }
  return Verdict::kAccept;
}

bool HealthMonitor::prediction_ok(Meters distance,
                                  MetersPerSecond velocity) const {
  return std::isfinite(distance.value()) && std::isfinite(velocity.value()) &&
         units::plausible_range(Meters{std::fmax(distance.value(), 0.0)},
                                options_.max_range_m) &&
         units::plausible_speed(velocity, options_.max_speed_mps);
}

void HealthMonitor::note_holdover_step() {
  ++holdover_steps_;
  if (!safe_stop_ && options_.max_holdover_steps > 0 &&
      holdover_steps_ > options_.max_holdover_steps) {
    safe_stop_ = true;
    ++stats_.safe_stop_entries;
    telemetry::add(health_metrics().safe_stop_entries);
  }
}

void HealthMonitor::note_trusted_sample(bool attack_over) {
  holdover_steps_ = 0;
  if (safe_stop_ && attack_over) safe_stop_ = false;
}

void HealthMonitor::reset() {
  distance_gate_.reset();
  velocity_gate_.reset();
  innovation_streak_ = 0;
  prev_distance_ = units::Meters{0.0};
  prev_velocity_ = units::MetersPerSecond{0.0};
  has_prev_measurement_ = false;
  identical_run_ = 0;
  holdover_steps_ = 0;
  safe_stop_ = false;
  stats_ = HealthStats{};
}

}  // namespace safe::core
