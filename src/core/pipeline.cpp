#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "estimation/rls_predictor.hpp"

namespace safe::core {

SafeMeasurementPipeline::SafeMeasurementPipeline(
    std::shared_ptr<const cra::ChallengeSchedule> schedule,
    estimation::SeriesPredictorPtr distance_predictor,
    estimation::SeriesPredictorPtr velocity_predictor,
    const PipelineOptions& options)
    : modulator_(std::move(schedule)),
      distance_predictor_(std::move(distance_predictor)),
      velocity_predictor_(std::move(velocity_predictor)),
      options_(options) {
  if (!distance_predictor_ || !velocity_predictor_) {
    throw std::invalid_argument("SafeMeasurementPipeline: null predictor");
  }
}

bool SafeMeasurementPipeline::probe_suppressed(std::int64_t step) const {
  return !modulator_.tx_enabled(step);
}

SafeMeasurement SafeMeasurementPipeline::process(
    std::int64_t step, const radar::RadarMeasurement& measurement) {
  const cra::DetectionDecision decision = detector_.observe(
      step, probe_suppressed(step), measurement.nonzero_output());
  return finish(step, measurement, decision);
}

SafeMeasurement SafeMeasurementPipeline::process_scored(
    std::int64_t step, const radar::RadarMeasurement& measurement,
    bool attack_actually_active) {
  const cra::DetectionDecision decision = detector_.observe_scored(
      step, probe_suppressed(step), measurement.nonzero_output(),
      attack_actually_active);
  return finish(step, measurement, decision);
}

void SafeMeasurementPipeline::take_snapshot(std::int64_t step) {
  snapshot_distance_ = distance_predictor_->clone();
  snapshot_velocity_ = velocity_predictor_->clone();
  snapshot_state_ = state_;
  snapshot_step_ = step;
}

void SafeMeasurementPipeline::restore_snapshot(std::int64_t detection_step) {
  if (!snapshot_step_) return;
  distance_predictor_ = snapshot_distance_->clone();
  velocity_predictor_ = snapshot_velocity_->clone();
  state_ = snapshot_state_;
  // Free-run across the quarantined interval (the samples between the last
  // verified-clean challenge and detection are discarded as suspect). The
  // snapshot already covers its own slot, so advance from the next step.
  for (std::int64_t k = *snapshot_step_ + 1; k < detection_step; ++k) {
    state_.last_distance = std::max(distance_predictor_->predict_next(), 0.0);
    state_.last_velocity = velocity_predictor_->predict_next();
  }
}

SafeMeasurement SafeMeasurementPipeline::finish(
    std::int64_t step, const radar::RadarMeasurement& measurement,
    const cra::DetectionDecision& decision) {
  SafeMeasurement out;
  out.challenge_slot = decision.challenge_slot;
  out.under_attack = decision.under_attack;
  out.attack_started = decision.attack_started;
  out.attack_cleared = decision.attack_cleared;

  if (decision.attack_started && options_.rollback_on_detection) {
    restore_snapshot(step);
  }

  const bool can_estimate =
      state_.had_target &&
      state_.trained_samples >= options_.min_training_samples;

  if (decision.under_attack || decision.challenge_slot) {
    // No trustworthy radar data this epoch: hold over with the RLS
    // estimates when trained, else repeat the last trusted values.
    out.target_present = state_.had_target;
    if (can_estimate) {
      // Distances are physical ranges: clamp the free-run at zero.
      out.distance_m = std::max(distance_predictor_->predict_next(), 0.0);
      out.relative_velocity_mps = velocity_predictor_->predict_next();
      out.estimated = true;
      state_.last_distance = out.distance_m;
      state_.last_velocity = out.relative_velocity_mps;
    } else {
      out.distance_m = state_.last_distance;
      out.relative_velocity_mps = state_.last_velocity;
      out.estimated = state_.had_target;
    }
    // A silent challenge re-verifies cleanliness; snapshot the rolled-
    // forward state so the next detection quarantines from here.
    if (decision.challenge_slot && !decision.under_attack &&
        !decision.attack_started) {
      take_snapshot(step);
    }
    return out;
  }

  // Clean, probing epoch: pass the radar measurement through.
  if (measurement.coherent_echo) {
    out.target_present = true;
    out.distance_m = measurement.estimate.distance_m;
    out.relative_velocity_mps = measurement.estimate.range_rate_mps;
    distance_predictor_->observe(out.distance_m);
    velocity_predictor_->observe(out.relative_velocity_mps);
    ++state_.trained_samples;
    state_.had_target = true;
    state_.last_distance = out.distance_m;
    state_.last_velocity = out.relative_velocity_mps;
  } else {
    out.target_present = false;
  }
  return out;
}

void SafeMeasurementPipeline::reset() {
  detector_.reset();
  distance_predictor_->reset();
  velocity_predictor_->reset();
  state_ = TrustedState{};
  snapshot_distance_.reset();
  snapshot_velocity_.reset();
  snapshot_state_ = TrustedState{};
  snapshot_step_.reset();
}

SafeMeasurementPipeline make_default_pipeline(
    std::shared_ptr<const cra::ChallengeSchedule> schedule) {
  return SafeMeasurementPipeline(
      std::move(schedule),
      std::make_unique<estimation::RlsArPredictor>(),
      std::make_unique<estimation::RlsArPredictor>());
}

}  // namespace safe::core
