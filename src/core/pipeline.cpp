#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "detect/spec.hpp"
#include "estimation/rls_predictor.hpp"
#include "telemetry/telemetry.hpp"

namespace safe::core {

namespace {

// Per-sample pipeline metrics (DESIGN.md §11). All counts are pure functions
// of the processed sample stream (jobs-invariant); only the duration
// histogram depends on the wall clock.
struct PipelineMetrics {
  telemetry::MetricId samples = telemetry::counter("pipeline.samples");
  telemetry::MetricId challenge_slots =
      telemetry::counter("pipeline.challenge_slots");
  telemetry::MetricId detections = telemetry::counter("pipeline.detections");
  telemetry::MetricId clears = telemetry::counter("pipeline.clears");
  telemetry::MetricId rejected =
      telemetry::counter("pipeline.rejected_measurements");
  telemetry::MetricId holdover =
      telemetry::counter("pipeline.holdover_samples");
  telemetry::MetricId transitions =
      telemetry::counter("health.state_transitions");
  telemetry::MetricId process_ns =
      telemetry::duration_histogram("pipeline.process_ns");
};

const PipelineMetrics& pipeline_metrics() {
  static const PipelineMetrics m;
  return m;
}

/// Cause tag for a degradation-state transition, from the step's decision
/// and output flags (exported on every health.state trace instant). The
/// detecting backend supplies its own tag for the clean -> attack edge
/// (CRA: "cra-detection", so default-config traces are unchanged).
const char* transition_cause(DegradationState to,
                             const detect::Verdict& decision,
                             const SafeMeasurement& out, bool sensor_dead) {
  switch (to) {
    case DegradationState::kUnderAttack:
      return decision.attack_started ? decision.cause : "attack-ongoing";
    case DegradationState::kSafeStop:
      return "holdover-budget-exhausted";
    case DegradationState::kHoldover:
      if (out.measurement_rejected) return "measurement-rejected";
      if (sensor_dead) return "sensor-dead";
      if (decision.challenge_slot) return "challenge-slot";
      return "sensor-dropout";
    case DegradationState::kClean:
      return decision.attack_cleared ? "attack-cleared" : "recovered";
  }
  return "unknown";
}

}  // namespace

PipelineOptions hardened_pipeline_options(std::size_t max_holdover_steps) {
  PipelineOptions options;
  options.health.innovation_threshold = 25.0;  // ~5-sigma jumps quarantined
  options.health.max_holdover_steps = max_holdover_steps;
  options.health.dropout_holdover_steps = 5;
  options.health.max_identical_measurements = 8;
  options.detector.clear_after_silent_challenges = 2;
  return options;
}

SafeMeasurementPipeline::SafeMeasurementPipeline(
    std::shared_ptr<const cra::ChallengeSchedule> schedule,
    estimation::SeriesPredictorPtr distance_predictor,
    estimation::SeriesPredictorPtr velocity_predictor,
    const PipelineOptions& options)
    : modulator_(std::move(schedule)),
      detector_(detect::make_detector(options.detector_spec,
                                      options.detector)),
      distance_predictor_(std::move(distance_predictor)),
      velocity_predictor_(std::move(velocity_predictor)),
      options_(options),
      health_(options.health) {
  if (!distance_predictor_ || !velocity_predictor_) {
    throw std::invalid_argument("SafeMeasurementPipeline: null predictor");
  }
}

bool SafeMeasurementPipeline::probe_suppressed(std::int64_t step) const {
  return !modulator_.tx_enabled(step);
}

detect::Observation SafeMeasurementPipeline::make_observation(
    std::int64_t step, const radar::RadarMeasurement& measurement) const {
  detect::Observation obs;
  obs.step = step;
  obs.challenge_slot = probe_suppressed(step);
  obs.receiver_nonzero = measurement.nonzero_output();
  obs.coherent_echo = measurement.coherent_echo;
  obs.distance = measurement.estimate.distance_m;
  obs.relative_velocity = measurement.estimate.range_rate_mps;
  return obs;
}

SafeMeasurement SafeMeasurementPipeline::process(
    std::int64_t step, const radar::RadarMeasurement& measurement) {
  const detect::Verdict decision =
      detector_->observe(make_observation(step, measurement));
  return finish(step, measurement, decision);
}

SafeMeasurement SafeMeasurementPipeline::process_scored(
    std::int64_t step, const radar::RadarMeasurement& measurement,
    bool attack_actually_active) {
  const detect::Verdict decision = detector_->observe_scored(
      make_observation(step, measurement), attack_actually_active);
  return finish(step, measurement, decision);
}

void SafeMeasurementPipeline::take_snapshot(std::int64_t step) {
  snapshot_distance_ = distance_predictor_->clone();
  snapshot_velocity_ = velocity_predictor_->clone();
  snapshot_state_ = state_;
  snapshot_step_ = step;
}

void SafeMeasurementPipeline::restore_snapshot(std::int64_t detection_step) {
  if (!snapshot_step_) return;
  distance_predictor_ = snapshot_distance_->clone();
  velocity_predictor_ = snapshot_velocity_->clone();
  state_ = snapshot_state_;
  // Free-run across the quarantined interval (the samples between the last
  // verified-clean challenge and detection are discarded as suspect). The
  // snapshot already covers its own slot, so advance from the next step.
  for (std::int64_t k = *snapshot_step_ + 1; k < detection_step; ++k) {
    state_.last_distance =
        Meters{std::max(distance_predictor_->predict_next(), 0.0)};
    state_.last_velocity =
        MetersPerSecond{velocity_predictor_->predict_next()};
  }
}

void SafeMeasurementPipeline::hold_over(SafeMeasurement& out,
                                        bool can_estimate) {
  out.target_present = state_.had_target;
  if (can_estimate) {
    double d = distance_predictor_->predict_next();
    double v = velocity_predictor_->predict_next();
    if (!health_.prediction_ok(Meters{d}, MetersPerSecond{v})) {
      // The free-run diverged (non-finite or non-physical): re-train from
      // scratch instead of feeding garbage to the controller, and fall back
      // to the last trusted values for this step.
      distance_predictor_->reset();
      velocity_predictor_->reset();
      state_.trained_samples = 0;
      health_.record_predictor_reset();
      d = state_.last_distance.value();
      v = state_.last_velocity.value();
    } else {
      // Distances are physical ranges: clamp the free-run at zero.
      d = std::max(d, 0.0);
    }
    out.distance_m = Meters{d};
    out.relative_velocity_mps = MetersPerSecond{v};
    out.estimated = true;
    state_.last_distance = out.distance_m;
    state_.last_velocity = out.relative_velocity_mps;
  } else {
    out.distance_m = state_.last_distance;
    out.relative_velocity_mps = state_.last_velocity;
    out.estimated = state_.had_target;
  }
  if (state_.had_target) health_.note_holdover_step();
}

SafeMeasurement SafeMeasurementPipeline::finish(
    std::int64_t step, const radar::RadarMeasurement& measurement,
    const detect::Verdict& decision) {
  const PipelineMetrics& metrics = pipeline_metrics();
  telemetry::ScopedTimer span("pipeline.process", "pipeline",
                              metrics.process_ns,
                              telemetry::TraceDetail::kFine);
  span.arg("step", step);
  telemetry::add(metrics.samples);
  if (decision.challenge_slot) telemetry::add(metrics.challenge_slots);
  if (decision.attack_started) telemetry::add(metrics.detections);
  if (decision.attack_cleared) telemetry::add(metrics.clears);

  SafeMeasurement out;
  out.challenge_slot = decision.challenge_slot;
  out.under_attack = decision.under_attack;
  out.attack_started = decision.attack_started;
  out.attack_cleared = decision.attack_cleared;

  if (decision.attack_started && options_.rollback_on_detection) {
    restore_snapshot(step);
  }

  const bool can_estimate =
      state_.had_target &&
      state_.trained_samples >= options_.min_training_samples;
  bool sensor_dead = false;

  if (decision.under_attack || decision.challenge_slot) {
    // No trustworthy radar data this epoch: hold over with the RLS
    // estimates when trained, else repeat the last trusted values.
    hold_over(out, can_estimate);
    // A silent challenge re-verifies cleanliness; snapshot the rolled-
    // forward state so the next detection quarantines from here.
    if (decision.challenge_slot && !decision.under_attack &&
        !decision.attack_started) {
      take_snapshot(step);
    }
  } else if (measurement.coherent_echo) {
    // Clean, probing epoch with a report: validate before trusting it.
    const HealthMonitor::Verdict verdict = health_.validate(
        measurement.estimate.distance_m, measurement.estimate.range_rate_mps,
        state_.had_target, state_.last_distance, state_.last_velocity);
    if (verdict == HealthMonitor::Verdict::kAccept) {
      silent_run_ = 0;
      out.target_present = true;
      out.distance_m = measurement.estimate.distance_m;
      out.relative_velocity_mps = measurement.estimate.range_rate_mps;
      distance_predictor_->observe(out.distance_m.value());
      velocity_predictor_->observe(out.relative_velocity_mps.value());
      ++state_.trained_samples;
      state_.had_target = true;
      state_.last_distance = out.distance_m;
      state_.last_velocity = out.relative_velocity_mps;
      health_.note_trusted_sample(/*attack_over=*/!decision.under_attack);
    } else {
      // Quarantined report (non-finite, out of range, or innovation
      // outlier): never train on it; hold over when a target is tracked.
      out.measurement_rejected = true;
      if (state_.had_target) {
        hold_over(out, can_estimate);
      } else {
        out.target_present = false;
      }
    }
  } else if (state_.had_target && options_.health.dropout_holdover_steps > 0 &&
             silent_run_ < options_.health.dropout_holdover_steps) {
    // Unexpected silence while tracking (sensor dropout, not a challenge):
    // bridge a bounded number of epochs with estimates before declaring the
    // target lost.
    ++silent_run_;
    health_.record_bridged_dropout();
    hold_over(out, can_estimate);
  } else {
    out.target_present = false;
    if (state_.had_target && options_.health.dropout_holdover_steps > 0) {
      // Bridging exhausted while a target was being tracked: the sensor is
      // dead, not the road clear. Keep charging the holdover budget so a
      // prolonged outage forces DEGRADED_SAFE_STOP instead of letting the
      // controller resume cruise on "no target".
      health_.note_holdover_step();
      sensor_dead = true;
    }
  }

  // Resolve the degradation state after this step's bookkeeping.
  const DegradationState previous = degradation_;
  if (health_.safe_stop()) {
    degradation_ = DegradationState::kSafeStop;
  } else if (decision.under_attack) {
    degradation_ = DegradationState::kUnderAttack;
  } else if (out.estimated || out.measurement_rejected || sensor_dead) {
    degradation_ = DegradationState::kHoldover;
  } else {
    degradation_ = DegradationState::kClean;
  }
  if (out.measurement_rejected) telemetry::add(metrics.rejected);
  if (out.estimated) telemetry::add(metrics.holdover);
  if (degradation_ != previous) {
    telemetry::add(metrics.transitions);
    if (telemetry::tracing_enabled()) {
      telemetry::instant_event(
          "health.state", "health",
          telemetry::TraceArgs{}
              .text("from", to_string(previous))
              .text("to", to_string(degradation_))
              .text("cause", transition_cause(degradation_, decision, out,
                                              sensor_dead))
              .integer("step", step)
              .take());
    }
  }
  out.degradation = degradation_;
  out.safe_stop = degradation_ == DegradationState::kSafeStop;
  out.holdover_steps = health_.holdover_steps();
  return out;
}

void SafeMeasurementPipeline::reset() {
  detector_->reset();
  distance_predictor_->reset();
  velocity_predictor_->reset();
  state_ = TrustedState{};
  health_.reset();
  degradation_ = DegradationState::kClean;
  silent_run_ = 0;
  snapshot_distance_.reset();
  snapshot_velocity_.reset();
  snapshot_state_ = TrustedState{};
  snapshot_step_.reset();
}

SafeMeasurementPipeline make_default_pipeline(
    std::shared_ptr<const cra::ChallengeSchedule> schedule,
    const PipelineOptions& options) {
  return SafeMeasurementPipeline(
      std::move(schedule),
      std::make_unique<estimation::RlsArPredictor>(),
      std::make_unique<estimation::RlsArPredictor>(), options);
}

}  // namespace safe::core
