#include "core/lti_case.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "estimation/rls_predictor.hpp"

namespace safe::core {

using linalg::RMatrix;
using linalg::RVector;

LtiCaseResult::LtiCaseResult(std::size_t outputs)
    : trace([outputs] {
        std::vector<std::string> cols{"step", "challenge", "under_attack"};
        for (std::size_t i = 0; i < outputs; ++i) {
          cols.push_back("y_true_" + std::to_string(i));
          cols.push_back("y_used_" + std::to_string(i));
        }
        return cols;
      }()) {}

LtiSecureCase::LtiSecureCase(LtiCaseConfig config,
                             std::shared_ptr<const cra::ChallengeSchedule> schedule,
                             std::optional<LtiOutputAttack> attack)
    : config_(std::move(config)),
      schedule_(std::move(schedule)),
      attack_(std::move(attack)) {
  sim::validate_model(config_.model);
  if (!schedule_) {
    throw std::invalid_argument("LtiSecureCase: null schedule");
  }
  const std::size_t q = config_.model.c.rows();
  const std::size_t m = config_.model.b.cols();
  if (config_.feedback_gain.rows() != m || config_.feedback_gain.cols() != q) {
    throw std::invalid_argument("LtiSecureCase: feedback gain shape");
  }
  if (config_.reference_output.size() != q) {
    throw std::invalid_argument("LtiSecureCase: reference size");
  }
  if (config_.initial_state.size() != config_.model.a.rows()) {
    throw std::invalid_argument("LtiSecureCase: initial state size");
  }
  if (attack_ && attack_->value.size() != q) {
    throw std::invalid_argument("LtiSecureCase: attack value size");
  }
  if (config_.horizon_steps <= 0) {
    throw std::invalid_argument("LtiSecureCase: horizon must be > 0");
  }
}

LtiCaseResult LtiSecureCase::run() {
  const std::size_t q = config_.model.c.rows();
  sim::LtiSystem plant(config_.model, config_.initial_state,
                       config_.measurement_noise_stddev, config_.seed);
  cra::ChallengeResponseDetector detector;

  // Long holdovers amplify intercept noise in the differenced AR model;
  // slow forgetting keeps the learned drift rate near zero.
  estimation::RlsArOptions predictor_options;
  predictor_options.rls.forgetting_factor = 0.995;
  std::vector<estimation::RlsArPredictor> predictors(
      q, estimation::RlsArPredictor{predictor_options});
  std::size_t trained = 0;
  RVector last_trusted(q);

  // Snapshot of predictor/trust state at the last verified-clean challenge:
  // on detection we roll back so the samples recorded between attack onset
  // and detection cannot poison the holdover (same policy as
  // SafeMeasurementPipeline).
  std::vector<estimation::RlsArPredictor> snapshot_predictors = predictors;
  std::size_t snapshot_trained = 0;
  RVector snapshot_last = last_trusted;
  std::int64_t snapshot_step = -1;

  LtiCaseResult result(q);

  for (std::int64_t k = 0; k < config_.horizon_steps; ++k) {
    const bool challenge = schedule_->is_challenge(k);
    const bool attack_active =
        attack_ &&
        attack_->window.contains(safe::units::Seconds{static_cast<double>(k)});

    // --- Sensor output y' (Eq. 4) with CRA probe gating.
    const RVector y_true = plant.true_output();
    RVector y_sensor(q);
    bool receiver_nonzero;
    if (challenge) {
      // Probe suppressed: a clean environment returns silence; an attacker
      // keeps injecting.
      if (attack_active) {
        y_sensor = attack_->kind == LtiOutputAttack::Kind::kDos
                       ? attack_->value
                       : attack_->value;  // the injected component alone
        receiver_nonzero = linalg::norm_inf(y_sensor) >
                           4.0 * (config_.measurement_noise_stddev + 1e-12);
      } else {
        receiver_nonzero = false;
      }
    } else {
      y_sensor = plant.measure();
      if (attack_active) {
        if (attack_->kind == LtiOutputAttack::Kind::kDos) {
          y_sensor = attack_->value;
        } else {
          y_sensor += attack_->value;
        }
      }
      receiver_nonzero = true;
    }

    const auto decision =
        detector.observe_scored(k, challenge, receiver_nonzero, attack_active);

    if (decision.attack_started && snapshot_step >= 0 &&
        config_.defense_enabled) {
      // Quarantine the suspect interval: restore the last verified-clean
      // state and free-run it forward to the detection instant.
      predictors = snapshot_predictors;
      trained = snapshot_trained;
      last_trusted = snapshot_last;
      for (std::int64_t j = snapshot_step + 1; j < k; ++j) {
        for (std::size_t i = 0; i < q; ++i) {
          last_trusted[i] = predictors[i].predict_next();
        }
      }
    }

    // --- Choose what the controller consumes.
    RVector y_used(q);
    const bool can_estimate =
        trained >= config_.min_training_samples && config_.defense_enabled;
    if (config_.defense_enabled && (decision.under_attack || challenge)) {
      if (can_estimate) {
        for (std::size_t i = 0; i < q; ++i) {
          y_used[i] = predictors[i].predict_next();
        }
      } else {
        y_used = last_trusted;
      }
      if (challenge && !decision.under_attack && !decision.attack_started) {
        snapshot_predictors = predictors;
        snapshot_trained = trained;
        snapshot_last = last_trusted;
        snapshot_step = k;
      }
    } else if (challenge) {
      // Undefended runs hold the last sample across mute slots.
      y_used = last_trusted;
    } else {
      y_used = y_sensor;
      if (config_.defense_enabled) {
        for (std::size_t i = 0; i < q; ++i) predictors[i].observe(y_used[i]);
        ++trained;
      }
      last_trusted = y_used;
    }

    // --- Static output feedback and plant update.
    const RVector error = config_.reference_output - y_used;
    const RVector u = config_.feedback_gain * error;
    plant.step(u);

    // --- Record.
    std::vector<double> row{static_cast<double>(k), challenge ? 1.0 : 0.0,
                            decision.under_attack ? 1.0 : 0.0};
    for (std::size_t i = 0; i < q; ++i) {
      row.push_back(y_true[i]);
      row.push_back(y_used[i]);
    }
    result.trace.append_row(row);

    for (std::size_t i = 0; i < q; ++i) {
      const double err = std::abs(y_true[i] - config_.reference_output[i]);
      if (k >= config_.horizon_steps / 2) {
        result.max_tracking_error = std::max(result.max_tracking_error, err);
      }
      if (k >= 3 * config_.horizon_steps / 4) {
        result.tail_tracking_error =
            std::max(result.tail_tracking_error, err);
      }
    }
  }

  result.detection_step = detector.detection_step();
  result.detection_stats = detector.stats();
  return result;
}

LtiCaseConfig make_dc_motor_case() {
  // First-order speed loop: x' = 0.9 x + 0.5 u, y = x. Proportional output
  // feedback u = 2 (ref - y) places the closed-loop pole at 0.9 - 1.0 =
  // -0.1 (well inside the unit circle).
  LtiCaseConfig cfg;
  cfg.model = sim::LtiModel{
      .a = RMatrix{{0.9}},
      .b = RMatrix{{0.5}},
      .c = RMatrix{{1.0}},
  };
  cfg.initial_state = RVector{0.0};
  cfg.feedback_gain = RMatrix{{2.0}};
  cfg.reference_output = RVector{1.0};
  cfg.measurement_noise_stddev = 0.005;
  return cfg;
}

LtiCaseConfig make_double_integrator_case() {
  // Position-velocity plant under PD output feedback:
  // u = kp (ref_p - p) + kv (0 - v); closed loop is a damped oscillator.
  LtiCaseConfig cfg;
  const double dt = 0.5;
  cfg.model = sim::LtiModel{
      .a = RMatrix{{1.0, dt}, {0.0, 1.0}},
      .b = RMatrix{{0.5 * dt * dt}, {dt}},
      .c = RMatrix{{1.0, 0.0}, {0.0, 1.0}},
  };
  cfg.initial_state = RVector{0.0, 0.0};
  cfg.feedback_gain = RMatrix{{0.3, 0.8}};
  cfg.reference_output = RVector{10.0, 0.0};
  cfg.measurement_noise_stddev = 0.01;
  return cfg;
}

}  // namespace safe::core
