// Generic secure-sensing harness for the paper's Section 3 formalism.
//
// Plant:    x_{k+1} = A x_k + B u_k            (Eq. 1)
// Sensor:   y'_k    = C x_k + y^a_k + v_k      (Eqs. 2, 4)
// Control:  u_k     = F (y_ref - y_used,k)     (static output feedback)
//
// The sensor is *active*: at challenge slots its probe is suppressed, so a
// trusted environment returns y = 0 there (Section 5.2's contract,
// independent of the physical sensing modality). Attacks add y^a (bias
// injection) or replace the reading with a jamming value r (DoS). The
// defense is the paper's: challenge-response detection + per-channel RLS
// holdover. This harness demonstrates the method on arbitrary LTI systems,
// not just the car-following case study.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "attack/window.hpp"
#include "cra/challenge.hpp"
#include "cra/detector.hpp"
#include "estimation/series_predictor.hpp"
#include "sim/lti_system.hpp"
#include "sim/trace.hpp"

namespace safe::core {

/// Output-level attack on the generic LTI sensor.
struct LtiOutputAttack {
  enum class Kind {
    kDos,   ///< Replace y with the jamming value r (per channel).
    kBias,  ///< Add a constant offset y^a (delay-injection analogue).
  };
  Kind kind = Kind::kBias;
  attack::AttackWindow window{};
  linalg::RVector value;  ///< r for kDos, y^a for kBias (size = outputs).
};

struct LtiCaseConfig {
  sim::LtiModel model;
  linalg::RVector initial_state;
  linalg::RMatrix feedback_gain;      ///< F: inputs x outputs.
  linalg::RVector reference_output;   ///< y_ref.
  double measurement_noise_stddev = 0.0;
  std::int64_t horizon_steps = 300;
  std::uint64_t seed = 1;
  std::size_t min_training_samples = 8;
  bool defense_enabled = true;
};

struct LtiCaseResult {
  sim::Trace trace;
  std::optional<std::int64_t> detection_step;
  cra::DetectionStats detection_stats;
  /// Largest |y_true - y_ref| over the second half of the run; bounded
  /// when the defense keeps the loop stable.
  double max_tracking_error = 0.0;
  /// Largest |y_true - y_ref| over the final quarter: what remains after
  /// detection latency transients and post-attack recovery have played out.
  double tail_tracking_error = 0.0;

  explicit LtiCaseResult(std::size_t outputs);
};

class LtiSecureCase {
 public:
  /// Throws std::invalid_argument on dimension mismatches.
  LtiSecureCase(LtiCaseConfig config,
                std::shared_ptr<const cra::ChallengeSchedule> schedule,
                std::optional<LtiOutputAttack> attack);

  LtiCaseResult run();

 private:
  LtiCaseConfig config_;
  std::shared_ptr<const cra::ChallengeSchedule> schedule_;
  std::optional<LtiOutputAttack> attack_;
};

/// Demo plant: discretized DC-motor speed loop (scalar, stable pole).
LtiCaseConfig make_dc_motor_case();

/// Demo plant: double integrator with position+velocity outputs under PD
/// output feedback — an inherently unstable plant that *needs* good sensor
/// data, which makes the attack consequences visible.
LtiCaseConfig make_double_integrator_case();

}  // namespace safe::core
