#include "sim/lti_system.hpp"

#include <stdexcept>

#include "linalg/qr.hpp"

namespace safe::sim {

using linalg::RMatrix;
using linalg::RVector;

void validate_model(const LtiModel& model) {
  if (!model.a.is_square() || model.a.rows() == 0) {
    throw std::invalid_argument("LtiModel: A must be square and non-empty");
  }
  const std::size_t n = model.a.rows();
  if (model.b.rows() != n) {
    throw std::invalid_argument("LtiModel: B row count must match A");
  }
  if (model.c.cols() != n) {
    throw std::invalid_argument("LtiModel: C column count must match A");
  }
  if (model.c.rows() == 0 || model.b.cols() == 0) {
    throw std::invalid_argument("LtiModel: B and C must be non-empty");
  }
}

LtiSystem::LtiSystem(LtiModel model, RVector initial_state,
                     double measurement_noise_stddev, std::uint64_t seed)
    : model_(std::move(model)),
      x_(std::move(initial_state)),
      noise_(0.0, measurement_noise_stddev, seed) {
  validate_model(model_);
  if (x_.size() != model_.a.rows()) {
    throw std::invalid_argument("LtiSystem: initial state dimension mismatch");
  }
}

const RVector& LtiSystem::step(const RVector& u) {
  if (u.size() != input_dim()) {
    throw std::invalid_argument("LtiSystem::step: input dimension mismatch");
  }
  x_ = model_.a * x_ + model_.b * u;
  return x_;
}

RVector LtiSystem::measure() {
  RVector y = model_.c * x_;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += noise_.sample();
  return y;
}

RVector LtiSystem::true_output() const { return model_.c * x_; }

void LtiSystem::reset(RVector initial_state) {
  if (initial_state.size() != state_dim()) {
    throw std::invalid_argument("LtiSystem::reset: dimension mismatch");
  }
  x_ = std::move(initial_state);
}

RMatrix observability_matrix(const LtiModel& model) {
  validate_model(model);
  const std::size_t n = model.a.rows();
  const std::size_t q = model.c.rows();
  RMatrix obs(n * q, n);
  RMatrix block = model.c;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t r = 0; r < q; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        obs(k * q + r, c) = block(r, c);
      }
    }
    block = block * model.a;
  }
  return obs;
}

bool is_observable(const LtiModel& model) {
  const RMatrix obs = observability_matrix(model);
  // QR needs rows >= cols; the observability matrix has n*q >= n rows.
  return linalg::QrDecomposition<double>(obs).rank() == model.a.rows();
}

}  // namespace safe::sim
