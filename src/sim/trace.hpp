// Column-oriented trace recording for simulations and benches.
//
// A Trace collects named time series during a run and can render them as CSV
// or as an aligned text table (the format the figure benches print).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace safe::sim {

class Trace {
 public:
  /// Declares columns up front; `append_row` must supply one value each.
  explicit Trace(std::vector<std::string> column_names);

  /// Appends one sample per column. Throws std::invalid_argument when the
  /// value count does not match the column count.
  void append_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t num_columns() const { return names_.size(); }
  [[nodiscard]] std::size_t num_rows() const { return rows_; }
  [[nodiscard]] const std::vector<std::string>& column_names() const {
    return names_;
  }

  /// Column by name; throws std::out_of_range for unknown names.
  [[nodiscard]] const std::vector<double>& column(const std::string& name) const;

  /// True when a column of that name exists (lets consumers stay compatible
  /// with traces recorded before a column was added).
  [[nodiscard]] bool has_column(const std::string& name) const;

  /// Largest value of a column (0.0 for an empty trace) — convenient for
  /// "did this flag ever fire" queries on indicator columns.
  [[nodiscard]] double column_max(const std::string& name) const;

  /// Column by index.
  [[nodiscard]] const std::vector<double>& column(std::size_t index) const;

  /// Writes all rows as CSV with a header line.
  void write_csv(std::ostream& os) const;

  /// Writes an aligned, human-readable table. `stride` > 1 subsamples rows
  /// (the header and final row are always included).
  void write_table(std::ostream& os, std::size_t stride = 1) const;

  /// Parses a CSV previously produced by write_csv (header + numeric
  /// rows). Throws std::invalid_argument on malformed input.
  static Trace read_csv(std::istream& is);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
  std::size_t rows_ = 0;
};

}  // namespace safe::sim
