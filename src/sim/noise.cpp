#include "sim/noise.hpp"

#include <stdexcept>

namespace safe::sim {

GaussianNoise::GaussianNoise(double mean, double stddev, std::uint64_t seed)
    : mean_(mean), stddev_(stddev), rng_(seed), dist_(mean, stddev) {
  if (stddev < 0.0) {
    throw std::invalid_argument("GaussianNoise: stddev must be >= 0");
  }
}

double GaussianNoise::sample() {
  if (stddev_ == 0.0) return mean_;
  return dist_(rng_);
}

UniformNoise::UniformNoise(double lo, double hi, std::uint64_t seed)
    : rng_(seed), dist_(lo, hi) {
  if (!(lo < hi)) {
    throw std::invalid_argument("UniformNoise: need lo < hi");
  }
}

double UniformNoise::sample() { return dist_(rng_); }

}  // namespace safe::sim
