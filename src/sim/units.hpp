// Unit conversions shared by the radar and vehicle models.
//
// Everything inside the library is SI; these helpers exist only at the edges
// (paper parameters quoted in mph, dBi, dB, ...).
#pragma once

#include <cmath>

namespace safe::sim::units {

inline constexpr double kSpeedOfLightMps = 299'792'458.0;
inline constexpr double kMilesPerHourToMps = 0.44704;

/// Miles per hour -> meters per second.
constexpr double mph_to_mps(double mph) { return mph * kMilesPerHourToMps; }

/// Meters per second -> miles per hour.
constexpr double mps_to_mph(double mps) { return mps / kMilesPerHourToMps; }

/// Decibels -> linear power ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Linear power ratio -> decibels.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

/// Round-trip delay for a target at `distance_m` (seconds).
constexpr double range_to_delay_s(double distance_m) {
  return 2.0 * distance_m / kSpeedOfLightMps;
}

/// Target distance implied by a round-trip delay (meters).
constexpr double delay_to_range_m(double delay_s) {
  return delay_s * kSpeedOfLightMps / 2.0;
}

}  // namespace safe::sim::units
