// Compatibility shim: the unit layer moved to units/units.hpp (strong types
// plus the original raw-double helpers). Include that header directly in new
// code; this alias namespace keeps the historical safe::sim::units spelling
// working.
#pragma once

#include "units/units.hpp"

namespace safe::sim::units {

using namespace safe::units;  // NOLINT(google-build-using-namespace)

}  // namespace safe::sim::units
