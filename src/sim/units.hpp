// Unit conversions shared by the radar and vehicle models.
//
// Everything inside the library is SI; these helpers exist only at the edges
// (paper parameters quoted in mph, dBi, dB, ...).
#pragma once

#include <cmath>

namespace safe::sim::units {

inline constexpr double kSpeedOfLightMps = 299'792'458.0;
inline constexpr double kMilesPerHourToMps = 0.44704;

/// Miles per hour -> meters per second.
constexpr double mph_to_mps(double mph) { return mph * kMilesPerHourToMps; }

/// Meters per second -> miles per hour.
constexpr double mps_to_mph(double mps) { return mps / kMilesPerHourToMps; }

/// Decibels -> linear power ratio.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Linear power ratio -> decibels.
inline double linear_to_db(double linear) { return 10.0 * std::log10(linear); }

/// Round-trip delay for a target at `distance_m` (seconds).
constexpr double range_to_delay_s(double distance_m) {
  return 2.0 * distance_m / kSpeedOfLightMps;
}

/// Target distance implied by a round-trip delay (meters).
constexpr double delay_to_range_m(double delay_s) {
  return delay_s * kSpeedOfLightMps / 2.0;
}

// --- Physical plausibility limits ---------------------------------------
//
// Bounds on what an automotive ranging sensor can legitimately report.
// Anything outside is a sensor fault or an implausibly crude spoof; the
// pipeline's health monitor rejects such samples before they reach the
// controller or the predictors.

/// Generous ceiling on any automotive radar range report (Bosch LRR2 tops
/// out at 200 m; 1 km covers every profile in sensors/).
inline constexpr double kMaxPlausibleRangeM = 1000.0;

/// |relative velocity| ceiling: two vehicles closing at ~270 mph.
inline constexpr double kMaxPlausibleSpeedMps = 120.0;

/// Range report within [0, max]: finite and physically representable.
inline bool plausible_range_m(double d,
                              double max_range_m = kMaxPlausibleRangeM) {
  return std::isfinite(d) && d >= 0.0 && d <= max_range_m;
}

/// Relative-velocity report within +/- max: finite and physical.
inline bool plausible_speed_mps(double v,
                                double max_speed_mps = kMaxPlausibleSpeedMps) {
  return std::isfinite(v) && v >= -max_speed_mps && v <= max_speed_mps;
}

}  // namespace safe::sim::units
