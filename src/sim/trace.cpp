#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace safe::sim {

namespace {

// One row per simulated step across every live Trace: the cheapest proxy
// for "simulation work done" the telemetry layer exports (jobs-invariant).
const telemetry::MetricId& trace_rows_metric() {
  static const telemetry::MetricId id = telemetry::counter("sim.trace_rows");
  return id;
}

}  // namespace

Trace::Trace(std::vector<std::string> column_names)
    : names_(std::move(column_names)), columns_(names_.size()) {
  if (names_.empty()) {
    throw std::invalid_argument("Trace: needs at least one column");
  }
}

void Trace::append_row(const std::vector<double>& values) {
  if (values.size() != names_.size()) {
    throw std::invalid_argument("Trace::append_row: value count mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    columns_[i].push_back(values[i]);
  }
  ++rows_;
  telemetry::add(trace_rows_metric());
}

const std::vector<double>& Trace::column(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) {
    throw std::out_of_range("Trace::column: unknown column '" + name + "'");
  }
  return columns_[static_cast<std::size_t>(it - names_.begin())];
}

bool Trace::has_column(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

double Trace::column_max(const std::string& name) const {
  const std::vector<double>& values = column(name);
  double best = 0.0;
  for (const double v : values) best = std::max(best, v);
  return best;
}

const std::vector<double>& Trace::column(std::size_t index) const {
  if (index >= columns_.size()) {
    throw std::out_of_range("Trace::column: index out of range");
  }
  return columns_[index];
}

void Trace::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < names_.size(); ++c) {
    os << (c == 0 ? "" : ",") << names_[c];
  }
  os << '\n';
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c == 0 ? "" : ",") << columns_[c][r];
    }
    os << '\n';
  }
}

Trace Trace::read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("Trace::read_csv: missing header");
  }
  std::vector<std::string> names;
  {
    std::istringstream header(line);
    std::string cell;
    while (std::getline(header, cell, ',')) names.push_back(cell);
  }
  if (names.empty()) {
    throw std::invalid_argument("Trace::read_csv: empty header");
  }
  Trace trace(std::move(names));
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string cell;
    std::vector<double> values;
    while (std::getline(row, cell, ',')) {
      std::size_t consumed = 0;
      double v = 0.0;
      try {
        v = std::stod(cell, &consumed);
      } catch (const std::exception&) {
        throw std::invalid_argument("Trace::read_csv: bad number on line " +
                                    std::to_string(line_no));
      }
      if (consumed != cell.size()) {
        throw std::invalid_argument("Trace::read_csv: trailing junk on line " +
                                    std::to_string(line_no));
      }
      values.push_back(v);
    }
    trace.append_row(values);  // throws on arity mismatch
  }
  return trace;
}

void Trace::write_table(std::ostream& os, std::size_t stride) const {
  if (stride == 0) stride = 1;
  constexpr int kWidth = 14;
  for (const auto& name : names_) {
    os << std::setw(kWidth) << name;
  }
  os << '\n';
  const auto print_row = [&](std::size_t r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << std::setw(kWidth) << std::fixed << std::setprecision(3)
         << columns_[c][r];
    }
    os << '\n';
  };
  for (std::size_t r = 0; r < rows_; r += stride) print_row(r);
  if (rows_ != 0 && (rows_ - 1) % stride != 0) print_row(rows_ - 1);
  os.unsetf(std::ios_base::floatfield);
}

}  // namespace safe::sim
