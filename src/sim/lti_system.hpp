// Discrete-time linear time-invariant plant model (paper Section 3).
//
//   x_{k+1} = A x_k + B u_k            (Eq. 1)
//   y_k     = C x_k + v_k              (Eq. 2)
//
// with v_k ~ N(0, R) per-channel Gaussian measurement noise.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "sim/noise.hpp"

namespace safe::sim {

/// LTI system matrices. All three must be dimensionally consistent:
/// A: n x n, B: n x m, C: q x n.
struct LtiModel {
  linalg::RMatrix a;
  linalg::RMatrix b;
  linalg::RMatrix c;
};

/// Validates the shape constraints above; throws std::invalid_argument.
void validate_model(const LtiModel& model);

/// Stateful simulator for Eqs. 1-2.
class LtiSystem {
 public:
  /// `measurement_noise_stddev` is the per-channel sigma of v_k (0 disables
  /// noise); `seed` makes runs reproducible.
  LtiSystem(LtiModel model, linalg::RVector initial_state,
            double measurement_noise_stddev = 0.0, std::uint64_t seed = 0);

  /// Advances one step with input u_k; returns the *new* state x_{k+1}.
  const linalg::RVector& step(const linalg::RVector& u);

  /// Measurement y_k = C x_k + v_k at the current state.
  [[nodiscard]] linalg::RVector measure();

  /// Noise-free output C x_k.
  [[nodiscard]] linalg::RVector true_output() const;

  [[nodiscard]] const linalg::RVector& state() const { return x_; }
  [[nodiscard]] const LtiModel& model() const { return model_; }
  [[nodiscard]] std::size_t state_dim() const { return model_.a.rows(); }
  [[nodiscard]] std::size_t input_dim() const { return model_.b.cols(); }
  [[nodiscard]] std::size_t output_dim() const { return model_.c.rows(); }

  void reset(linalg::RVector initial_state);

 private:
  LtiModel model_;
  linalg::RVector x_;
  GaussianNoise noise_;
};

/// Observability matrix [C; CA; ...; CA^(n-1)] stacked row-wise.
linalg::RMatrix observability_matrix(const LtiModel& model);

/// True iff (A, C) is observable (full-rank observability matrix).
bool is_observable(const LtiModel& model);

}  // namespace safe::sim
