// Deterministic noise sources.
//
// Every stochastic component in the library draws from an explicitly seeded
// generator so that simulations, tests, and benches are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace safe::sim {

/// Seeded Gaussian noise source, v_k ~ N(mean, sigma^2) (Eq. 2's v_k).
class GaussianNoise {
 public:
  GaussianNoise(double mean, double stddev, std::uint64_t seed);

  /// Next sample.
  double sample();

  /// Convenience: next sample, or exactly zero when the source was built
  /// with zero standard deviation (avoids perturbing noise-free tests).
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const { return stddev_; }

 private:
  double mean_;
  double stddev_;
  std::mt19937_64 rng_;  // ctor-seeded; lint: allow(unseeded-engine)
  std::normal_distribution<double> dist_;
};

/// Seeded uniform source over [lo, hi).
class UniformNoise {
 public:
  UniformNoise(double lo, double hi, std::uint64_t seed);

  double sample();

 private:
  std::mt19937_64 rng_;  // ctor-seeded; lint: allow(unseeded-engine)
  std::uniform_real_distribution<double> dist_;
};

}  // namespace safe::sim
