// Eq. 11 check: signal-to-jammer power ratio across the radar's range
// window, locating the crossover distance below which the DoS attack fails.
#include <cstdio>

#include "radar/link_budget.hpp"

int main() {
  using namespace safe::radar;
  const FmcwParameters wf = bosch_lrr2_parameters();
  const JammerParameters jam{};
  const double rcs = 10.0;

  std::printf(
      "Jammer effectiveness sweep (Eqs. 9-11), P_J = 100 mW, G_J = 10 dBi, "
      "B_J = 155 MHz, L_J = 0.10 dB\n\n");
  std::printf("%8s %14s %14s %12s %9s\n", "d[m]", "P_echo[W]", "P_jam[W]",
              "S/J", "jam wins");

  double crossover = -1.0;
  double prev_d = wf.min_range_m.value();
  bool prev_wins = jamming_succeeds(wf, jam, wf.min_range_m, rcs);
  for (double d = wf.min_range_m.value(); d <= wf.max_range_m.value();
       d += 2.0) {
    const double pr = received_echo_power_w(wf, safe::units::Meters{d}, rcs);
    const double pj = received_jammer_power_w(wf, jam, safe::units::Meters{d});
    const bool wins = pr / pj < 1.0;
    if (wins != prev_wins && crossover < 0.0) {
      crossover = 0.5 * (prev_d + d);
    }
    if (static_cast<long>(d - wf.min_range_m.value()) % 10 == 0) {
      std::printf("%8.1f %14.3e %14.3e %12.4e %9s\n", d, pr, pj, pr / pj,
                  wins ? "yes" : "no");
    }
    prev_wins = wins;
    prev_d = d;
  }
  if (crossover > 0.0) {
    std::printf(
        "\ncrossover: jamming succeeds beyond ~%.1f m (echo ~d^-4 vs jammer "
        "~d^-2)\n",
        crossover);
  } else {
    std::printf("\nno crossover inside the range window\n");
  }
  std::printf(
      "paper reference: the Section 6.2 jammer defeats the radar at the "
      "100 m engagement distance\n");
  return 0;
}
