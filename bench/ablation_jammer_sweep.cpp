// Jammer-power ablation: the link-budget math (Eqs. 9-11) plus the closed
// loop it actually drives.
//
// For each jammer peak power the table reports the S/J ratio at the paper's
// 100 m engagement distance, the closed-form crossover distance beyond which
// jamming wins, and the closed-loop outcome of a runtime::Campaign over the
// power grid — once with the CRA defense disabled (does the DoS cause a
// crash?) and once enabled (is it detected and survived?).
//
// The crossover needs no distance loop: echo power falls as d^-4 and jammer
// power as d^-2 (Eqs. 9-10), so S/J(d) = S/J(d0) * (d0/d)^2 and jamming wins
// (S/J < 1) beyond d = d0 * sqrt(S/J(d0)).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "radar/link_budget.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"

namespace {

using namespace safe;

/// Buffers records so the off/on campaigns can be joined row by row.
class CollectSink final : public runtime::TrialSink {
 public:
  void consume(const runtime::TrialRecord& r) override {
    records.push_back(r);
  }
  std::vector<runtime::TrialRecord> records;
};

std::vector<runtime::TrialRecord> run_power_campaign(
    const std::vector<double>& powers, bool defense_enabled) {
  runtime::CampaignSpec spec;
  spec.base.attack = core::AttackKind::kDosJammer;
  spec.base.defense_enabled = defense_enabled;
  spec.base.estimator = radar::BeatEstimator::kPeriodogram;  // fast
  spec.trials = powers.size();
  spec.jammer_powers_w = powers;  // single grid axis: trial t = power t
  spec.scenario_seeds = {spec.base.seed};  // same noise draw per cell
  CollectSink sink;
  std::vector<runtime::TrialSink*> sinks{&sink};
  runtime::Campaign(std::move(spec)).run(/*jobs=*/0, sinks);
  return std::move(sink.records);
}

}  // namespace

int main() {
  const radar::FmcwParameters wf = radar::bosch_lrr2_parameters();
  const double rcs = 10.0;
  const units::Meters d0{100.0};  // paper engagement distance

  const std::vector<double> powers{1e-4, 1e-3, 1e-2, 0.05,
                                   0.1,  0.5,  1.0};
  const auto off = run_power_campaign(powers, /*defense_enabled=*/false);
  const auto on = run_power_campaign(powers, /*defense_enabled=*/true);

  std::printf(
      "Jammer-power ablation (Eqs. 9-11 + closed loop), G_J = 10 dBi, "
      "B_J = 155 MHz, L_J = 0.10 dB, d0 = %.0f m\n\n",
      d0.value());
  std::printf("%10s %12s %12s | %18s | %18s\n", "P_J[W]", "S/J @ d0",
              "crossover[m]", "defense off", "defense on");

  int failures = 0;
  const double pr0 = radar::received_echo_power_w(wf, d0, rcs);
  for (std::size_t i = 0; i < powers.size(); ++i) {
    radar::JammerParameters jam{};
    jam.peak_power_w = powers[i];
    const double ratio0 =
        pr0 / radar::received_jammer_power_w(wf, jam, d0);
    // S/J(d) = ratio0 * (d0/d)^2  =>  S/J = 1 at d = d0 * sqrt(ratio0).
    const double crossover_m = d0.value() * std::sqrt(ratio0);

    char cross[24];
    if (crossover_m < wf.min_range_m.value()) {
      std::snprintf(cross, sizeof(cross), "< min range");
    } else if (crossover_m > wf.max_range_m.value()) {
      std::snprintf(cross, sizeof(cross), "> max range");
    } else {
      std::snprintf(cross, sizeof(cross), "%.1f", crossover_m);
    }

    char off_cell[32];
    std::snprintf(off_cell, sizeof(off_cell), "%s gap %7.2f m",
                  off[i].collided ? "CRASH" : "ok   ",
                  off[i].min_gap_m.value());
    const std::string verdict =
        on[i].detection_step >= 0
            ? "det k=" + std::to_string(on[i].detection_step) + ","
            : "silent,";
    char on_cell[32];
    std::snprintf(on_cell, sizeof(on_cell), "%s gap %7.2f m", verdict.c_str(),
                  on[i].min_gap_m.value());
    std::printf("%10.4f %12.4e %12s | %18s | %18s\n", powers[i], ratio0,
                cross, off_cell, on_cell);

    if (!off[i].error.empty() || !on[i].error.empty()) ++failures;
  }

  // Sanity anchors from the paper: the Section 6.2 jammer (100 mW) defeats
  // the radar at 100 m, and the enabled CRA defense both detects it and
  // prevents the crash the undefended loop suffers.
  const std::size_t paper = 4;  // powers[4] == 0.1 W
  radar::JammerParameters paper_jam{};
  if (!radar::jamming_succeeds(wf, paper_jam, d0, rcs)) {
    std::printf("FAIL: paper jammer does not defeat the radar at 100 m\n");
    ++failures;
  }
  if (on[paper].detection_step < 0) {
    std::printf("FAIL: defense missed the 100 mW DoS jammer\n");
    ++failures;
  }
  if (on[paper].collided) {
    std::printf("FAIL: defended loop crashed under the paper jammer\n");
    ++failures;
  }

  std::printf(
      "\nechoes fade as d^-4, jamming as d^-2: past the crossover the jammer "
      "owns the band. The paper's 100 mW jammer wins at the 100 m engagement "
      "distance; the CRA challenge exposes it and the estimation pipeline "
      "rides out the outage.\n");
  return failures == 0 ? 0 : 1;
}
