// Reproduces paper Figure 2a: DoS (jamming) attack on the radar's reflected
// signal with the leader decelerating at a constant -0.1082 m/s^2.
//
// Expected shape (paper): the attacked trace blows up to large corrupted
// values after onset at k = 182; the CRA detector fires at k = 182; the
// estimated trace continues the no-attack trend so the follower stays safe.
#include "bench_common.hpp"

int main() {
  const auto runs = safe::bench::run_figure(
      safe::core::LeaderScenario::kConstantDecel,
      safe::core::AttackKind::kDosJammer, /*attack_start_s=*/182.0);
  safe::bench::print_figure(
      "Figure 2a: DoS attack, leader constant deceleration -0.1082 m/s^2",
      runs);
  return 0;
}
