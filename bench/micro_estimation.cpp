// Microbenchmarks (google-benchmark) for the estimation and DSP kernels:
// per-update cost of RLS / LMS / Kalman, the paper's 118-step RLS holdover,
// and the per-epoch cost of root-MUSIC vs periodogram beat extraction.
#include <benchmark/benchmark.h>

#include <cmath>
#include <random>

#include "dsp/music.hpp"
#include "dsp/spectral.hpp"
#include "estimation/baselines.hpp"
#include "estimation/rls.hpp"
#include "estimation/rls_predictor.hpp"

namespace {

using namespace safe;

void BM_RlsUpdate(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  estimation::RlsFilter filter(dim);
  linalg::RVector h(dim, 1.0);
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto _ : state) {
    for (std::size_t i = 0; i < dim; ++i) h[i] = dist(rng);
    benchmark::DoNotOptimize(filter.update(h, dist(rng)));
  }
}
BENCHMARK(BM_RlsUpdate)->Arg(4)->Arg(8)->Arg(16);

void BM_LmsObserve(benchmark::State& state) {
  estimation::LmsArPredictor lms(4);
  std::mt19937 rng(2);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto _ : state) {
    lms.observe(dist(rng));
  }
}
BENCHMARK(BM_LmsObserve);

void BM_KalmanCvObserve(benchmark::State& state) {
  estimation::KalmanCvPredictor kf;
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  double y = 0.0;
  for (auto _ : state) {
    y += dist(rng);
    kf.observe(y);
  }
}
BENCHMARK(BM_KalmanCvObserve);

// The paper's Results-paragraph workload: free-run the trained RLS pair
// across the 118-step attack window (k = 182..300). Paper reports ~1.2e7 ns
// in MATLAB.
void BM_RlsHoldover118(benchmark::State& state) {
  estimation::RlsArPredictor trained_d, trained_v;
  for (int k = 0; k < 182; ++k) {
    trained_d.observe(100.0 - 0.3 * k);
    trained_v.observe(-0.3 + 0.001 * k);
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto d = trained_d.clone();
    auto v = trained_v.clone();
    state.ResumeTiming();
    for (int k = 0; k < 118; ++k) {
      benchmark::DoNotOptimize(d->predict_next());
      benchmark::DoNotOptimize(v->predict_next());
    }
  }
}
BENCHMARK(BM_RlsHoldover118);

dsp::ComplexSignal bench_tone(std::size_t n) {
  std::mt19937 rng(4);
  std::normal_distribution<double> awgn(0.0, 0.1);
  dsp::ComplexSignal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::polar(1.0, 2.0 * 3.14159265358979 * 0.047 *
                               static_cast<double>(i)) +
           dsp::Complex{awgn(rng), awgn(rng)};
  }
  return x;
}

void BM_RootMusic512(benchmark::State& state) {
  const auto x = bench_tone(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::root_music_frequencies(x, 1.0e6, 1));
  }
}
BENCHMARK(BM_RootMusic512);

void BM_Periodogram512(benchmark::State& state) {
  const auto x = bench_tone(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::estimate_dominant_tone(x, 1.0e6));
  }
}
BENCHMARK(BM_Periodogram512);

void BM_Fft4096(benchmark::State& state) {
  const auto x = bench_tone(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(x));
  }
}
BENCHMARK(BM_Fft4096);

}  // namespace

BENCHMARK_MAIN();
