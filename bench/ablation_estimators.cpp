// Ablation: the paper's RLS estimator vs baseline predictors on the
// attack-window holdover task, for both leader scenarios.
//
// Protocol as in ablation_rls_lambda: train on the clean measured series up
// to k = 182, free-run 118 steps, RMSE against truth.
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "dsp/levinson.hpp"
#include "estimation/baselines.hpp"
#include "estimation/rls_predictor.hpp"

namespace {

using namespace safe;
using estimation::SeriesPredictorPtr;

struct Rmse {
  double distance = 0.0;
  double velocity = 0.0;
};

Rmse holdover_rmse(const core::CarFollowingResult& clean,
                   const std::function<SeriesPredictorPtr()>& make,
                   std::int64_t onset) {
  const auto& d_meas = clean.trace.column("meas_gap_m");
  const auto& v_meas = clean.trace.column("meas_dv_mps");
  const auto& d_true = clean.trace.column("true_gap_m");
  const auto& v_true = clean.trace.column("true_dv_mps");
  const auto& challenge = clean.trace.column("challenge");

  SeriesPredictorPtr dist = make(), vel = make();
  for (std::size_t k = 0; k < static_cast<std::size_t>(onset); ++k) {
    if (challenge[k] != 0.0) continue;
    dist->observe(d_meas[k]);
    vel->observe(v_meas[k]);
  }
  double se_d = 0.0, se_v = 0.0;
  std::size_t n = 0;
  for (std::size_t k = static_cast<std::size_t>(onset);
       k < clean.trace.num_rows(); ++k) {
    const double dd = dist->predict_next() - d_true[k];
    const double dv = vel->predict_next() - v_true[k];
    se_d += dd * dd;
    se_v += dv * dv;
    ++n;
  }
  return Rmse{std::sqrt(se_d / static_cast<double>(n)),
              std::sqrt(se_v / static_cast<double>(n))};
}

void run_scenario(core::LeaderScenario leader, const char* label) {
  core::ScenarioOptions o;
  o.leader = leader;
  o.estimator = radar::BeatEstimator::kRootMusic;
  const auto clean = core::make_paper_scenario(o).run();

  const std::vector<
      std::pair<const char*, std::function<SeriesPredictorPtr()>>>
      estimators{
          {"rls-ar-d1 (paper)",
           [] { return std::make_unique<estimation::RlsArPredictor>(); }},
          {"rls-ar raw",
           [] {
             return std::make_unique<estimation::RlsArPredictor>(
                 estimation::RlsArOptions{.difference = false});
           }},
          {"rls-poly",
           [] { return std::make_unique<estimation::RlsPolyPredictor>(); }},
          {"levinson-ar",
           [] { return std::make_unique<dsp::LevinsonPredictor>(); }},
          {"lms-ar",
           [] { return std::make_unique<estimation::LmsArPredictor>(); }},
          {"kalman-cv",
           [] { return std::make_unique<estimation::KalmanCvPredictor>(); }},
          {"linear-extrap",
           [] { return std::make_unique<estimation::LinearExtrapolator>(); }},
          {"hold-last",
           [] { return std::make_unique<estimation::HoldLastPredictor>(); }},
      };

  std::printf("--- %s ---\n", label);
  std::printf("%-20s %14s %16s\n", "estimator", "RMSE d [m]", "RMSE dv [m/s]");
  for (const auto& [name, make] : estimators) {
    const Rmse r = holdover_rmse(clean, make, 182);
    std::printf("%-20s %14.3f %16.3f\n", name, r.distance, r.velocity);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Estimator ablation: 118-step attack-window holdover RMSE (train on "
      "k < 182)\n\n");
  run_scenario(core::LeaderScenario::kConstantDecel,
               "scenario (i): constant deceleration");
  run_scenario(core::LeaderScenario::kDecelThenAccel,
               "scenario (ii): decelerate then accelerate");
  std::printf(
      "shape: on the steady deceleration (i), trend-aware estimators (RLS "
      "family, Kalman-CV) beat hold-last by 3-6x in distance RMSE. After the "
      "manoeuvre change of (ii), short-memory estimators that anchor to the "
      "recent gentle trend win; the RLS family remains within safe margins "
      "in closed loop (see the figure benches), which is the property the "
      "paper's recovery claim rests on.\n");
  return 0;
}
