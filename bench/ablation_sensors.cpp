// Sensor-modality ablation: the same CRA + RLS defense on the park-assist
// study with the ultrasonic and lidar profiles (Section 5.2 claims CRA works
// for any active sensor). Also shows the burn-through effect: a weak DoS
// blinder is defeated by the d^-4 echo growth at short range even without
// any defense.
#include <cstdio>
#include <memory>
#include <string>

#include "core/parking.hpp"

namespace {

using namespace safe;
namespace units = safe::units;
using core::ParkingAttack;
using core::ParkingConfig;
using core::ParkingSimulation;

std::shared_ptr<const cra::ChallengeSchedule> schedule() {
  return std::make_shared<cra::PrbsChallengeSchedule>(0x0B5E, 1, 5, 200);
}

void run_case(const ParkingConfig& cfg, std::optional<ParkingAttack> attack,
              const char* sensor_label, const char* case_label) {
  ParkingSimulation sim(cfg, schedule(), std::move(attack));
  const auto r = sim.run();
  const std::string detected =
      r.detection_step ? std::to_string(*r.detection_step)
                       : std::string("-");
  std::printf("%-11s %-22s %-9s %12.2f %10s %9s %4zu %4zu\n", sensor_label,
              case_label, cfg.defense_enabled ? "on" : "off",
              r.final_clearance_m.value(),
              r.collided ? "COLLISION" : "stopped",
              detected.c_str(), r.detection_stats.false_positives,
              r.detection_stats.false_negatives);
}

ParkingAttack spoof() {
  ParkingAttack a;
  a.kind = ParkingAttack::Kind::kSpoof;
  a.window = attack::AttackWindow{units::Seconds{40.0},
                                  units::Seconds{200.0}};
  return a;
}

ParkingAttack dos(double power) {
  ParkingAttack a;
  a.kind = ParkingAttack::Kind::kDos;
  a.window = attack::AttackWindow{units::Seconds{40.0},
                                  units::Seconds{200.0}};
  a.blinder_power_w = power;
  return a;
}

}  // namespace

int main() {
  std::printf(
      "Park-assist under attack, per sensor modality (stop target 0.35 m)\n\n");
  std::printf("%-11s %-22s %-9s %12s %10s %9s %4s %4s\n", "sensor", "case",
              "defense", "final [m]", "outcome", "detected@", "FP", "FN");

  for (const bool defended : {false, true}) {
    ParkingConfig ultra;
    ultra.defense_enabled = defended;
    run_case(ultra, std::nullopt, "ultrasonic", "clean");
    run_case(ultra, spoof(), "ultrasonic", "spoof +1 m");
    run_case(ultra, dos(1e-3), "ultrasonic", "dos strong");
    run_case(ultra, dos(1e-6), "ultrasonic", "dos weak (burn-thru)");

    ParkingConfig lidar;
    lidar.defense_enabled = defended;
    lidar.sensor = sensors::lidar_parameters();
    lidar.initial_clearance_m = units::Meters{8.0};
    run_case(lidar, spoof(), "lidar", "spoof +1 m");
  }

  std::printf(
      "\nshape: identical defense logic protects both modalities (CRA is "
      "transmitter-side, not waveform-specific). Undefended, the spoof and "
      "the strong blinder end in collision; the weak blinder is survived "
      "even undefended because the echo burns through at short range — an "
      "attack-power threshold Eq. 11 predicts.\n");
  return 0;
}
