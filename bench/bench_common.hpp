// Shared helpers for the figure-reproduction benches.
//
// Each figure bench runs the case study three times with root-MUSIC (as the
// paper does): clean ("RadarData-Without-Attack"), attacked with the defense
// off ("RadarData-With-Attack"), and attacked with the defense on
// ("Estimated Radar Data"), then prints the three series side by side.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "telemetry/telemetry.hpp"
#include "units/units.hpp"

namespace safe::bench {

/// Wall-clock spread over repeated timed runs; single-shot timings on a
/// shared machine are too noisy to report alone.
struct TimingStats {
  units::Seconds min_s{0.0};
  units::Seconds median_s{0.0};
  units::Seconds max_s{0.0};
};

/// Times `fn` `repeats` times on the telemetry steady clock (the same
/// now_ns() path production spans use) and reports min/median/max.
template <typename Fn>
TimingStats time_runs(std::size_t repeats, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(repeats);
  telemetry::Stopwatch watch;
  for (std::size_t i = 0; i < repeats; ++i) {
    watch.restart();
    fn();
    samples.push_back(watch.elapsed_seconds());
  }
  std::sort(samples.begin(), samples.end());
  TimingStats stats;
  if (!samples.empty()) {
    stats.min_s = units::Seconds{samples.front()};
    stats.median_s = units::Seconds{samples[samples.size() / 2]};
    stats.max_s = units::Seconds{samples.back()};
  }
  return stats;
}

struct FigureRuns {
  core::CarFollowingResult without_attack;
  core::CarFollowingResult with_attack;    // defense off
  core::CarFollowingResult estimated;      // defense on
};

inline FigureRuns run_figure(core::LeaderScenario leader,
                             core::AttackKind attack, double attack_start_s) {
  core::ScenarioOptions o;
  o.leader = leader;
  o.attack = attack;
  o.attack_start_s = units::Seconds{attack_start_s};
  o.estimator = radar::BeatEstimator::kRootMusic;

  FigureRuns runs;
  o.attack = core::AttackKind::kNone;
  runs.without_attack = core::make_paper_scenario(o).run();

  o.attack = attack;
  o.defense_enabled = false;
  runs.with_attack = core::make_paper_scenario(o).run();

  o.defense_enabled = true;
  runs.estimated = core::make_paper_scenario(o).run();
  return runs;
}

/// Prints the paper's plotted series: relative distance and relative
/// velocity, for the three traces, every `stride` seconds.
inline void print_figure(const char* title, const FigureRuns& runs,
                         std::size_t stride = 5) {
  const auto& t = runs.without_attack.trace.column("time_s");
  const auto& d_clean = runs.without_attack.trace.column("meas_gap_m");
  const auto& v_clean = runs.without_attack.trace.column("meas_dv_mps");
  const auto& d_attack = runs.with_attack.trace.column("meas_gap_m");
  const auto& v_attack = runs.with_attack.trace.column("meas_dv_mps");
  const auto& d_est = runs.estimated.trace.column("safe_gap_m");
  const auto& v_est = runs.estimated.trace.column("safe_dv_mps");

  std::printf("%s\n", title);
  std::printf("%6s %14s %14s %14s %14s %14s %14s\n", "t[s]", "d_noattack[m]",
              "d_attacked[m]", "d_estimated[m]", "dv_noattack", "dv_attacked",
              "dv_estimated");
  for (std::size_t k = 0; k < t.size(); k += stride) {
    std::printf("%6.0f %14.2f %14.2f %14.2f %14.3f %14.3f %14.3f\n", t[k],
                d_clean[k], d_attack[k], d_est[k], v_clean[k], v_attack[k],
                v_est[k]);
  }

  const std::string collision_at =
      runs.with_attack.collided
          ? " (k = " + std::to_string(*runs.with_attack.collision_step) + ")"
          : std::string{};
  const std::string detected_at =
      runs.estimated.detection_step
          ? std::to_string(*runs.estimated.detection_step)
          : std::string("never");

  std::printf("\nsummary:\n");
  std::printf("  without attack : min gap %.2f m, collision %s\n",
              runs.without_attack.min_gap_m.value(),
              runs.without_attack.collided ? "YES" : "no");
  std::printf("  with attack    : min gap %.2f m, collision %s%s\n",
              runs.with_attack.min_gap_m.value(),
              runs.with_attack.collided ? "YES" : "no", collision_at.c_str());
  std::printf(
      "  defended       : min gap %.2f m, collision %s, detected at k = %s, "
      "FP %zu, FN %zu\n\n",
      runs.estimated.min_gap_m.value(),
      runs.estimated.collided ? "YES" : "no",
      detected_at.c_str(), runs.estimated.detection_stats.false_positives,
      runs.estimated.detection_stats.false_negatives);
}

}  // namespace safe::bench
