// Campaign-engine scaling: the same Monte Carlo campaign at --jobs 1 vs
// --jobs hardware_concurrency, timed with min/median/max over repeats.
//
// Trials are independent closed-loop simulations, so the engine scales with
// cores; the interesting property is that the *results* do not change —
// the summary (and the JSONL stream, covered by tests/runtime_test.cpp) is
// bit-identical at any worker count. On a single-core host the speedup is
// ~1x by construction; the bench reports, it does not assert.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "runtime/spec.hpp"

namespace {

using namespace safe;

runtime::CampaignSpec speedup_spec() {
  return runtime::parse_campaign_spec(
      "trials = 48; seed = 7; horizon = 120;"
      "attack = none|dos|delay; onset = uniform(20,80);"
      "duration = uniform(20,60); jammer_power_w = loguniform(0.01,0.5);"
      "estimator = fft; hardened = true");
}

}  // namespace

int main() {
  const std::size_t hw = runtime::Campaign::default_jobs();
  const std::size_t repeats = 3;

  runtime::CampaignSummary serial_summary;
  runtime::CampaignSummary parallel_summary;
  const auto time_jobs = [&](std::size_t jobs,
                             runtime::CampaignSummary& summary) {
    return bench::time_runs(repeats, [&] {
      const runtime::Campaign campaign(speedup_spec());
      summary = campaign.run(jobs).summary;
    });
  };

  const bench::TimingStats serial = time_jobs(1, serial_summary);
  const bench::TimingStats parallel = time_jobs(hw, parallel_summary);

  std::printf(
      "Campaign scaling: 48 mixed-attack trials, %zu repeat(s) per point\n\n",
      repeats);
  std::printf("%10s %10s %10s %10s\n", "jobs", "min[s]", "median[s]",
              "max[s]");
  std::printf("%10zu %10.3f %10.3f %10.3f\n", static_cast<std::size_t>(1),
              serial.min_s.value(), serial.median_s.value(),
              serial.max_s.value());
  std::printf("%10zu %10.3f %10.3f %10.3f\n", hw, parallel.min_s.value(),
              parallel.median_s.value(), parallel.max_s.value());
  std::printf("\nspeedup (median): %.2fx on %zu hardware thread(s)\n",
              parallel.median_s.value() > 0.0
                  ? serial.median_s.value() / parallel.median_s.value()
                  : 0.0,
              hw);

  const bool identical = runtime::format_summary(serial_summary) ==
                         runtime::format_summary(parallel_summary);
  std::printf("summary identical across job counts: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
