// Ablation: root-MUSIC vs FFT periodogram beat-frequency accuracy vs SNR.
//
// Justifies the paper's use of root-MUSIC for beat extraction: at moderate
// SNR both are unbiased, but MUSIC's variance is far lower near the
// threshold region, which translates directly into range accuracy via Eq. 7.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "dsp/music.hpp"
#include "dsp/spectral.hpp"
#include "radar/fmcw.hpp"
#include "units/units.hpp"

namespace {

using namespace safe::dsp;

ComplexSignal make_tone(double freq_hz, double fs, std::size_t n,
                        double snr_db, std::mt19937& rng) {
  const double noise_power = safe::units::Decibels{-snr_db}.to_linear();
  std::normal_distribution<double> awgn(0.0, std::sqrt(noise_power / 2.0));
  std::uniform_real_distribution<double> phase(0.0, 6.283185307179586);
  const double p0 = phase(rng);
  ComplexSignal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::polar(1.0, 2.0 * 3.14159265358979 * freq_hz *
                               static_cast<double>(i) / fs +
                           p0) +
           Complex{awgn(rng), awgn(rng)};
  }
  return x;
}

}  // namespace

int main() {
  const double fs = 1.0e6;
  const std::size_t n = 512;
  const int trials = 40;
  std::mt19937 rng(2026);
  std::uniform_real_distribution<double> freq_dist(20'000.0, 120'000.0);

  std::printf(
      "Beat-frequency estimator accuracy vs SNR (%d trials per point, "
      "N = %zu, fs = 1 MHz)\n\n",
      trials, n);
  std::printf("%8s %18s %18s %14s %14s\n", "SNR[dB]", "MUSIC RMSE [Hz]",
              "FFT RMSE [Hz]", "MUSIC d-err[m]", "FFT d-err[m]");

  // Range error per Hz of beat error: d = c*Ts*(f+ + f-)/(4*Bs) ->
  // dd/df = c*Ts/(4*Bs) * 2 (both beats move together for range error).
  const safe::radar::FmcwParameters wf = safe::radar::bosch_lrr2_parameters();
  const double m_per_hz = safe::units::kSpeedOfLightMps *
                          wf.sweep_time_s.value() /
                          (4.0 * wf.sweep_bandwidth_hz.value()) * 2.0;

  for (const double snr : {-10.0, -5.0, 0.0, 5.0, 10.0, 20.0, 30.0}) {
    double se_music = 0.0, se_fft = 0.0;
    for (int t = 0; t < trials; ++t) {
      const double f = freq_dist(rng);
      const ComplexSignal x = make_tone(f, fs, n, snr, rng);
      const auto music = root_music_frequencies(x, fs, 1);
      const auto fft = estimate_dominant_tone(x, fs);
      const double em = music.empty() ? fs / 2 : music[0] - f;
      const double ef = fft ? fft->frequency_hz - f : fs / 2;
      se_music += em * em;
      se_fft += ef * ef;
    }
    const double rmse_music = std::sqrt(se_music / trials);
    const double rmse_fft = std::sqrt(se_fft / trials);
    std::printf("%8.1f %18.2f %18.2f %14.4f %14.4f\n", snr, rmse_music,
                rmse_fft, rmse_music * m_per_hz, rmse_fft * m_per_hz);
  }
  std::printf(
      "\nshape (single tone): the interpolated periodogram is near the ML "
      "estimator for one tone, so it wins on variance. MUSIC's advantage is "
      "resolution, below.\n\n");

  // --- Resolution experiment: two equal tones separated by a fraction of
  // an FFT bin (fs/N = 1953 Hz at N = 512). Success = both tones recovered
  // within 30% of their separation.
  const int res_trials = 30;
  const double res_snr = 25.0;
  std::printf(
      "Two-tone resolution probability (SNR %.0f dB, N = %zu, FFT bin = "
      "%.0f Hz)\n\n",
      res_snr, n, fs / static_cast<double>(n));
  std::printf("%14s %14s %14s\n", "separation[Hz]", "MUSIC resolves",
              "FFT resolves");
  for (const double sep : {400.0, 800.0, 1200.0, 2000.0, 4000.0, 8000.0}) {
    int music_ok = 0, fft_ok = 0;
    for (int t = 0; t < res_trials; ++t) {
      const double f1 = freq_dist(rng);
      const double f2 = f1 + sep;
      ComplexSignal x = make_tone(f1, fs, n, res_snr, rng);
      const ComplexSignal y = make_tone(f2, fs, n, res_snr, rng);
      for (std::size_t i = 0; i < n; ++i) x[i] += y[i];

      const auto check = [&](std::vector<double> freqs) {
        if (freqs.size() != 2) return false;
        std::sort(freqs.begin(), freqs.end());
        return std::abs(freqs[0] - f1) < 0.3 * sep &&
               std::abs(freqs[1] - f2) < 0.3 * sep;
      };
      music_ok += check(root_music_frequencies(
                      x, fs, 2, {.covariance_order = 32}))
                      ? 1
                      : 0;
      std::vector<double> fft_freqs;
      for (const auto& tone : estimate_tones_periodogram(x, fs, 2)) {
        fft_freqs.push_back(tone.frequency_hz);
      }
      fft_ok += check(std::move(fft_freqs)) ? 1 : 0;
    }
    std::printf("%14.0f %13.0f%% %13.0f%%\n", sep,
                100.0 * music_ok / res_trials, 100.0 * fft_ok / res_trials);
  }
  std::printf(
      "\nshape (two tones): root-MUSIC resolves well below the FFT bin "
      "width; the periodogram cannot separate sub-bin pairs. This is why "
      "the paper extracts beat frequencies with root-MUSIC.\n");
  return 0;
}
