// Reproduces paper Figure 3b: delay-injection attack with the leader first
// decelerating at -0.1082 m/s^2 and then accelerating at +0.012 m/s^2.
#include "bench_common.hpp"

int main() {
  const auto runs = safe::bench::run_figure(
      safe::core::LeaderScenario::kDecelThenAccel,
      safe::core::AttackKind::kDelayInjection, /*attack_start_s=*/180.0);
  safe::bench::print_figure(
      "Figure 3b: delay-injection attack, leader decelerates then accelerates",
      runs);
  return 0;
}
