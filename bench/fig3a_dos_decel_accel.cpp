// Reproduces paper Figure 3a: DoS (jamming) attack with the leader first
// decelerating at -0.1082 m/s^2 and then accelerating at +0.012 m/s^2.
#include "bench_common.hpp"

int main() {
  const auto runs = safe::bench::run_figure(
      safe::core::LeaderScenario::kDecelThenAccel,
      safe::core::AttackKind::kDosJammer, /*attack_start_s=*/182.0);
  safe::bench::print_figure(
      "Figure 3a: DoS attack, leader decelerates then accelerates", runs);
  return 0;
}
