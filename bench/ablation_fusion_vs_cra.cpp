// Baseline comparison: redundancy-based fusion detection (related work
// [8]-style, two sensors) vs the paper's CRA (one sensor, modified
// transmitter).
//
// Three phases over a decelerating-leader truth series:
//  A. delay spoof on the radar only    — fusion sees the disagreement fast;
//                                        CRA waits for the next challenge.
//  B. coordinated spoof on both sensors — fusion is structurally blind;
//                                        CRA still catches each sensor.
//  C. clean but noisy                  — fusion false-alarm rate vs
//                                        threshold; CRA has zero FPs by
//                                        construction.
#include <cstdio>
#include <random>

#include "cra/challenge.hpp"
#include "cra/detector.hpp"
#include "sensors/fusion_detector.hpp"

namespace {

using namespace safe;

struct PhaseResult {
  int fusion_detect_step = -1;
  int cra_detect_step = -1;
  int fusion_false_alarms = 0;
};

PhaseResult run_phase(bool attack_radar, bool attack_lidar, double noise_sigma,
                      double fusion_threshold, unsigned seed) {
  const int horizon = 300;
  const int onset = 180;
  std::mt19937 rng(seed);
  std::normal_distribution<double> noise(0.0, noise_sigma);

  sensors::FusionDetector fusion(
      {.disagreement_threshold_m = safe::units::Meters{fusion_threshold},
       .required_consecutive = 2});
  const auto schedule = cra::paper_challenge_schedule(horizon);
  cra::ChallengeResponseDetector cra_radar;

  PhaseResult result;
  for (int k = 0; k < horizon; ++k) {
    const double truth = 100.0 - 0.25 * k;
    const bool attacked = k >= onset;

    double radar_range = truth + noise(rng);
    double lidar_range = truth + noise(rng);
    if (attacked && attack_radar) radar_range += 6.0;
    if (attacked && attack_lidar) lidar_range += 6.0;

    // Fusion: always-on cross-check.
    const auto fd = fusion.observe(true, safe::units::Meters{radar_range},
                                   true, safe::units::Meters{lidar_range});
    const bool any_attack = attacked && (attack_radar || attack_lidar);
    if (fd.under_attack && !any_attack) ++result.fusion_false_alarms;
    if (fd.under_attack && any_attack && result.fusion_detect_step < 0) {
      result.fusion_detect_step = k;
    }

    // CRA on the radar: at challenge slots a spoofer (which replays
    // continuously) produces a non-zero output.
    const bool challenge = schedule.is_challenge(k);
    const bool radar_nonzero = !challenge || (attacked && attack_radar);
    const auto cd = cra_radar.observe(k, challenge, radar_nonzero);
    if (cd.attack_started && result.cra_detect_step < 0) {
      result.cra_detect_step = k;
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf(
      "Fusion (two sensors) vs CRA (one sensor + modified transmitter)\n"
      "truth: gap 100 -> 25 m over 300 s; spoof +6 m from k = 180; "
      "measurement noise sigma = 0.3 m\n\n");

  const auto a = run_phase(true, false, 0.3, 2.0, 1);
  std::printf(
      "A. radar-only spoof     : fusion detects at k = %d, CRA at k = %d\n",
      a.fusion_detect_step, a.cra_detect_step);

  const auto b = run_phase(true, true, 0.3, 2.0, 2);
  std::printf(
      "B. coordinated spoof    : fusion detects at k = %d (blind), CRA at "
      "k = %d\n",
      b.fusion_detect_step, b.cra_detect_step);

  std::printf("C. clean, false alarms over 300 s vs fusion threshold:\n");
  for (const double thr : {0.5, 0.8, 1.0, 1.5, 2.0}) {
    int alarms = 0;
    for (unsigned seed = 10; seed < 20; ++seed) {
      alarms += run_phase(false, false, 0.3, thr, seed).fusion_false_alarms;
    }
    std::printf("     threshold %.1f m -> %d fusion false-alarm steps "
                "(10 seeds); CRA: 0\n",
                thr, alarms);
  }

  std::printf(
      "\nshape: fusion wins on latency when only one channel is attacked, "
      "but needs a second sensor, is threshold-tuned (false alarms as the "
      "threshold approaches the noise), and is blind to coordinated "
      "spoofing. CRA pays a challenge-schedule latency but needs no "
      "redundancy and has no false positives/negatives — the trade the "
      "paper argues for.\n");
  return 0;
}
