// Platoon attack-propagation ablation: how far a sensor attack on one
// vehicle travels down an N-vehicle string, swept over platoon size, the
// attacked follower's position, and the detection backend — driven by the
// runtime campaign engine (counter-based seeding + ordered sinks, so the
// table and the JSON line are bit-identical at any --jobs).
//
// Every cell runs the paper's delay-injection attack (onset 180 s) against
// one follower of the platoon; the remaining followers run clean pipelines
// and feel the attack only through the coupled gap dynamics. The columns
// quantify the propagation: shock depth (followers compressed to a
// near-collision gap), the string-stability L-inf amplification of peak gap
// deviations, and how many vehicles the defense reacted on (detections,
// safe-stop cascades).
//
// Output: one aligned row per (platoon, detector) cell, then a single JSON
// object on the last line (the CI smoke redirects stdout to
// BENCH_platoon.json). Wall-clock goes to stderr only, keeping stdout
// deterministic.
//
// Flags: --smoke (1 trial per cell), --jobs N (default 1).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "units/units.hpp"

namespace {

using namespace safe;

const char* const kDetectors[] = {
    "cra",
    "chi2",
    "ar",
    "fusion:members=cra+chi2,quorum=1",
};

struct Platoon {
  const char* spec;
  std::size_t size;
  std::size_t attacked;
};

// Sizes 2..16 with the attack at the head and at mid-string: the head case
// maximizes the number of downstream vehicles the shock can reach, the
// mid-string case checks that vehicles AHEAD of the attacked one stay clean.
const Platoon kPlatoons[] = {
    {"n=2,attacked=1", 2, 1},
    {"n=4,attacked=1", 4, 1},
    {"n=4,attacked=2", 4, 2},
    {"n=8,attacked=1", 8, 1},
    {"n=8,attacked=4", 8, 4},
    {"n=16,attacked=1", 16, 1},
    {"n=16,attacked=8", 16, 8},
};

struct CellStats {
  std::size_t trials = 0;
  std::size_t collisions = 0;
  std::size_t detected = 0;  ///< Attacked follower's detector fired.
  std::size_t shock_depth_sum = 0;
  std::size_t shock_depth_max = 0;
  double linf_sum = 0.0;
  double linf_max = 0.0;
  std::size_t detected_vehicles_sum = 0;
  std::size_t safe_stop_vehicles_sum = 0;
  double min_gap_min_m = 0.0;
  std::vector<double> latencies_s;

  [[nodiscard]] double shock_depth_mean() const {
    return trials > 0
               ? static_cast<double>(shock_depth_sum) /
                     static_cast<double>(trials)
               : 0.0;
  }
  [[nodiscard]] double linf_mean() const {
    return trials > 0 ? linf_sum / static_cast<double>(trials) : 0.0;
  }
  [[nodiscard]] double latency_median_s() const {
    if (latencies_s.empty()) return -1.0;
    std::vector<double> sorted = latencies_s;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
};

/// Buckets records by grid cell. The campaign crosses two axes — detector
/// (picked first) and platoon (appended last) — so trial t lands in cell
/// t % n_cells with detector index (cell % n_detectors) and platoon index
/// (cell / n_detectors), matching the engine's unravel order.
class CellSink final : public runtime::TrialSink {
 public:
  explicit CellSink(std::size_t cells) : cells_(cells) {}

  void consume(const runtime::TrialRecord& r) override {
    CellStats& cell =
        cells_[static_cast<std::size_t>(r.trial_id) % cells_.size()];
    if (cell.trials == 0 || r.min_gap_m.value() < cell.min_gap_min_m) {
      cell.min_gap_min_m = r.min_gap_m.value();
    }
    ++cell.trials;
    if (r.collided) ++cell.collisions;
    if (r.detection_step >= 0) ++cell.detected;
    cell.shock_depth_sum += r.shock_depth;
    cell.shock_depth_max = std::max(cell.shock_depth_max, r.shock_depth);
    cell.linf_sum += r.linf_amplification;
    cell.linf_max = std::max(cell.linf_max, r.linf_amplification);
    cell.detected_vehicles_sum += r.detected_vehicles;
    cell.safe_stop_vehicles_sum += r.safe_stop_vehicles;
    if (r.detection_latency_s.value() >= 0.0) {
      cell.latencies_s.push_back(r.detection_latency_s.value());
    }
  }

  [[nodiscard]] const std::vector<CellStats>& cells() const { return cells_; }

 private:
  std::vector<CellStats> cells_;
};

void append_json_double(std::ostringstream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::stoull(argv[++i]));
    }
  }
  const std::size_t n_detectors = std::size(kDetectors);
  const std::size_t n_platoons = std::size(kPlatoons);
  const std::size_t n_cells = n_detectors * n_platoons;
  const std::size_t trials_per_cell = smoke ? 1 : 3;

  runtime::CampaignSpec spec;
  spec.base.attack = core::AttackKind::kDelayInjection;
  spec.base.attack_start_s = units::Seconds{180.0};
  spec.base.estimator = radar::BeatEstimator::kPeriodogram;
  spec.detector_specs.assign(std::begin(kDetectors), std::end(kDetectors));
  for (const Platoon& p : kPlatoons) spec.platoon_specs.emplace_back(p.spec);
  spec.trials = n_cells * trials_per_cell;
  spec.seed = 1;

  CellSink sink(n_cells);
  std::vector<runtime::TrialSink*> sinks{&sink};
  const runtime::CampaignResult result =
      runtime::Campaign(std::move(spec)).run(jobs, sinks);
  std::fprintf(stderr, "platoon propagation: %zu trial(s) in %.2f s\n",
               result.trials, result.wall_s.value());

  std::printf(
      "Platoon attack-propagation ablation (delay attack, campaign engine, "
      "%zu trial(s) per cell)\n\n",
      trials_per_cell);
  std::printf("%-18s %-33s %6s %6s %8s %8s %7s %7s %10s %11s %5s\n",
              "platoon", "detector", "shock", "shockM", "linf", "linfM",
              "det.veh", "stops", "min gap[m]", "latency[s]", "crash");

  std::ostringstream json;
  json << "{\"bench\":\"platoon_propagation\",\"trials_per_cell\":"
       << trials_per_cell << ",\"rows\":[";
  bool first_row = true;
  for (std::size_t p = 0; p < n_platoons; ++p) {
    for (std::size_t d = 0; d < n_detectors; ++d) {
      const CellStats& s = sink.cells()[d + n_detectors * p];
      const double latency = s.latency_median_s();
      char latency_str[32];
      if (latency >= 0.0) {
        std::snprintf(latency_str, sizeof(latency_str), "%.2f", latency);
      } else {
        std::snprintf(latency_str, sizeof(latency_str), "n/a");
      }
      std::printf("%-18s %-33s %6.2f %6zu %8.3f %8.3f %7zu %7zu %10.2f "
                  "%11s %5zu\n",
                  kPlatoons[p].spec, kDetectors[d], s.shock_depth_mean(),
                  s.shock_depth_max, s.linf_mean(), s.linf_max,
                  s.detected_vehicles_sum, s.safe_stop_vehicles_sum,
                  s.min_gap_min_m, latency_str, s.collisions);

      if (!first_row) json << ",";
      first_row = false;
      json << "{\"platoon\":\"" << kPlatoons[p].spec
           << "\",\"size\":" << kPlatoons[p].size
           << ",\"attacked\":" << kPlatoons[p].attacked
           << ",\"detector\":\"" << kDetectors[d]
           << "\",\"trials\":" << s.trials << ",\"shock_depth_mean\":";
      append_json_double(json, s.shock_depth_mean());
      json << ",\"shock_depth_max\":" << s.shock_depth_max
           << ",\"linf_amplification_mean\":";
      append_json_double(json, s.linf_mean());
      json << ",\"linf_amplification_max\":";
      append_json_double(json, s.linf_max);
      json << ",\"detected\":" << s.detected
           << ",\"detected_vehicles\":" << s.detected_vehicles_sum
           << ",\"safe_stop_vehicles\":" << s.safe_stop_vehicles_sum
           << ",\"min_gap_min_m\":";
      append_json_double(json, s.min_gap_min_m);
      json << ",\"latency_median_s\":";
      append_json_double(json, s.latency_median_s());
      json << ",\"collisions\":" << s.collisions << "}";
    }
  }
  json << "]}";
  std::printf("\n%s\n", json.str().c_str());
  return 0;
}
