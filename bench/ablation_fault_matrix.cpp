// Fault-injection matrix: every injector kind crossed with the paper's
// scenarios, run through the hardened pipeline (innovation gate, holdover
// budget, dropout bridging, debounced clearance). The table shows how each
// corruption degrades the loop; the exit code enforces the robustness
// invariants the harness exists to protect:
//
//   * no collision in any defended hardened cell (min gap > 0),
//   * no NaN/Inf ever reaches control::acc,
//   * an unbounded fault exhausts the holdover budget and provably enters
//     DEGRADED_SAFE_STOP,
//   * an empty fault schedule is bit-identical to no schedule at all.
//
// `--smoke` trims the matrix for CI.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "fault/schedule.hpp"

namespace {

using namespace safe;

int failures = 0;

void check(bool ok, const char* what, const std::string& cell) {
  if (!ok) {
    ++failures;
    std::printf("FAIL [%s] %s\n", cell.c_str(), what);
  }
}

struct FaultCase {
  const char* label;
  const char* spec;
};

struct ScenarioCase {
  const char* label;
  core::LeaderScenario leader;
  core::AttackKind attack;
};

core::ScenarioOptions base_options(const ScenarioCase& sc) {
  core::ScenarioOptions o;
  o.estimator = radar::BeatEstimator::kPeriodogram;  // fast; MUSIC in figs
  o.leader = sc.leader;
  o.attack = sc.attack;
  o.pipeline = core::hardened_pipeline_options();
  return o;
}

void run_cell(const ScenarioCase& sc, const FaultCase& fc) {
  core::ScenarioOptions o = base_options(sc);
  o.fault_spec = fc.spec;
  const auto result = core::make_paper_scenario(o).run();
  const std::string cell =
      std::string(sc.label) + " x " + fc.label;

  const double deg_max = result.trace.column_max("degradation");
  const auto& hs = result.health_stats;
  std::printf("%-12s %-10s %8.2f %5s %6zu %6zu %6zu %5zu %5zu %4.0f\n",
              sc.label, fc.label, result.min_gap_m.value(),
              result.collided ? "CRASH" : "ok", hs.rejected_nonfinite,
              hs.rejected_out_of_range + hs.rejected_innovation +
                  hs.rejected_stuck,
              hs.bridged_dropouts, hs.predictor_resets,
              result.safe_stop_steps, deg_max);

  check(result.min_gap_m > safe::units::Meters{0.0} && !result.collided,
        "collision", cell);
  check(result.nonfinite_controller_inputs == 0,
        "non-finite value reached the controller", cell);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const FaultCase kFaults[] = {
      {"none", ""},
      {"dropout", "dropout:start=60,len=12"},
      {"nan", "nan:start=90,len=8,period=40"},
      {"inf", "inf:start=90,len=8,period=40"},
      {"stuck", "stuck:start=70,len=15"},
      {"bias", "bias:start=50,len=120,slope=0.05"},
      {"quantize", "quantize:start=40,len=0,step=0.5"},
      {"flap", "flap:start=100,len=120"},
      {"skip", "skip:start=60,len=0,period=7"},
  };
  const ScenarioCase kScenarios[] = {
      {"clean", core::LeaderScenario::kConstantDecel, core::AttackKind::kNone},
      {"dos", core::LeaderScenario::kConstantDecel,
       core::AttackKind::kDosJammer},
      {"delay+acc", core::LeaderScenario::kDecelThenAccel,
       core::AttackKind::kDelayInjection},
  };
  const std::size_t n_faults = smoke ? 4 : std::size(kFaults);
  const std::size_t n_scen = smoke ? 2 : std::size(kScenarios);

  std::printf("Fault x scenario matrix, hardened pipeline%s\n\n",
              smoke ? " (smoke)" : "");
  std::printf("%-12s %-10s %8s %5s %6s %6s %6s %5s %5s %4s\n", "scenario",
              "fault", "gap[m]", "out", "nonfin", "reject", "bridge", "reset",
              "stop", "deg");
  for (std::size_t s = 0; s < n_scen; ++s) {
    for (std::size_t f = 0; f < n_faults; ++f) {
      run_cell(kScenarios[s], kFaults[f]);
    }
  }

  // Holdover-budget invariant: an unbounded dropout starting mid-run must
  // exhaust the budget and latch DEGRADED_SAFE_STOP (degradation == 3).
  {
    core::ScenarioOptions o = base_options(kScenarios[0]);
    o.pipeline = core::hardened_pipeline_options(/*max_holdover_steps=*/30);
    o.fault_spec = "dropout:start=60,len=0";
    const auto r = core::make_paper_scenario(o).run();
    std::printf("\nbudget probe: safe-stop steps %zu, degradation max %.0f\n",
                r.safe_stop_steps, r.trace.column_max("degradation"));
    check(r.trace.column_max("degradation") == 3.0,
          "unbounded holdover never entered DEGRADED_SAFE_STOP",
          "budget-probe");
    check(r.safe_stop_steps > 0, "safe-stop never commanded", "budget-probe");
    check(r.nonfinite_controller_inputs == 0,
          "non-finite value reached the controller", "budget-probe");
    check(!r.collided, "collision in safe-stop", "budget-probe");
  }

  // Identity invariant: an explicitly-attached empty schedule must match a
  // run with no schedule at all, sample for sample.
  {
    core::ScenarioOptions o = base_options(kScenarios[1]);
    const auto plain = core::make_paper_scenario(o).run();
    core::Scenario with_empty = core::make_paper_scenario(o);
    with_empty.config.faults = std::make_shared<fault::FaultSchedule>();
    const auto wrapped = with_empty.run();
    const bool identical =
        plain.trace.column("follower_v_mps") ==
            wrapped.trace.column("follower_v_mps") &&
        plain.trace.column("safe_gap_m") == wrapped.trace.column("safe_gap_m");
    std::printf("empty-schedule identity: %s\n", identical ? "ok" : "BROKEN");
    check(identical, "empty schedule changed the simulation", "identity");
  }

  if (failures == 0) {
    std::printf("\nall robustness invariants hold (%s matrix)\n",
                smoke ? "smoke" : "full");
  } else {
    std::printf("\n%d invariant violation(s)\n", failures);
  }
  return failures == 0 ? 0 : 1;
}
