// Fault-injection matrix: every injector kind crossed with the paper's
// scenarios, run through the hardened pipeline (innovation gate, holdover
// budget, dropout bridging, debounced clearance). The table shows how each
// corruption degrades the loop; the exit code enforces the robustness
// invariants the harness exists to protect:
//
//   * no collision in any defended hardened cell (min gap > 0),
//   * no NaN/Inf ever reaches control::acc,
//   * an unbounded fault exhausts the holdover budget and provably enters
//     DEGRADED_SAFE_STOP,
//   * an empty fault schedule is bit-identical to no schedule at all.
//
// Each scenario row is a runtime::Campaign over the fault-spec grid axis, so
// the matrix runs on every core and the records stream back in trial order —
// the table is bit-identical at any worker count. `--smoke` trims the matrix
// for CI.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "fault/schedule.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"

namespace {

using namespace safe;

int failures = 0;

void check(bool ok, const char* what, const std::string& cell) {
  if (!ok) {
    ++failures;
    std::printf("FAIL [%s] %s\n", cell.c_str(), what);
  }
}

struct FaultCase {
  const char* label;
  const char* spec;
};

struct ScenarioCase {
  const char* label;
  core::LeaderScenario leader;
  core::AttackKind attack;
};

core::ScenarioOptions base_options(const ScenarioCase& sc) {
  core::ScenarioOptions o;
  o.estimator = radar::BeatEstimator::kPeriodogram;  // fast; MUSIC in figs
  o.leader = sc.leader;
  o.attack = sc.attack;
  o.pipeline = core::hardened_pipeline_options();
  return o;
}

/// Prints one matrix row per trial and enforces the per-cell invariants.
/// Records arrive in trial-id order, so the table layout never depends on
/// scheduling.
class MatrixSink final : public runtime::TrialSink {
 public:
  MatrixSink(const ScenarioCase& sc, const std::vector<FaultCase>& faults)
      : sc_(sc), faults_(faults) {}

  void consume(const runtime::TrialRecord& r) override {
    // Single grid axis: trial t runs fault cell t % n_faults == t.
    const FaultCase& fc = faults_[static_cast<std::size_t>(r.trial_id) %
                                  faults_.size()];
    const std::string cell = std::string(sc_.label) + " x " + fc.label;
    if (!r.error.empty()) {
      check(false, r.error.c_str(), cell);
      return;
    }
    std::printf("%-12s %-10s %8.2f %5s %6zu %6zu %6zu %5zu %5zu %4.0f\n",
                sc_.label, fc.label, r.min_gap_m.value(),
                r.collided ? "CRASH" : "ok", r.rejected_nonfinite,
                r.rejected_signal, r.bridged_dropouts, r.predictor_resets,
                r.safe_stop_steps, r.degradation_max);

    check(r.min_gap_m > safe::units::Meters{0.0} && !r.collided, "collision",
          cell);
    check(r.nonfinite_controller_inputs == 0,
          "non-finite value reached the controller", cell);
  }

 private:
  const ScenarioCase& sc_;
  const std::vector<FaultCase>& faults_;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const std::vector<FaultCase> all_faults{
      {"none", ""},
      {"dropout", "dropout:start=60,len=12"},
      {"nan", "nan:start=90,len=8,period=40"},
      {"inf", "inf:start=90,len=8,period=40"},
      {"stuck", "stuck:start=70,len=15"},
      {"bias", "bias:start=50,len=120,slope=0.05"},
      {"quantize", "quantize:start=40,len=0,step=0.5"},
      {"flap", "flap:start=100,len=120"},
      {"skip", "skip:start=60,len=0,period=7"},
  };
  const std::vector<ScenarioCase> all_scenarios{
      {"clean", core::LeaderScenario::kConstantDecel, core::AttackKind::kNone},
      {"dos", core::LeaderScenario::kConstantDecel,
       core::AttackKind::kDosJammer},
      {"delay+acc", core::LeaderScenario::kDecelThenAccel,
       core::AttackKind::kDelayInjection},
  };
  const std::vector<FaultCase> faults(
      all_faults.begin(),
      all_faults.begin() + static_cast<std::ptrdiff_t>(
                               smoke ? 4 : all_faults.size()));
  const std::vector<ScenarioCase> scenarios(
      all_scenarios.begin(),
      all_scenarios.begin() + static_cast<std::ptrdiff_t>(
                                  smoke ? 2 : all_scenarios.size()));

  std::printf("Fault x scenario matrix, hardened pipeline%s\n\n",
              smoke ? " (smoke)" : "");
  std::printf("%-12s %-10s %8s %5s %6s %6s %6s %5s %5s %4s\n", "scenario",
              "fault", "gap[m]", "out", "nonfin", "reject", "bridge", "reset",
              "stop", "deg");
  for (const ScenarioCase& sc : scenarios) {
    runtime::CampaignSpec spec;
    spec.base = base_options(sc);
    spec.trials = faults.size();
    // One grid axis (fault spec); every cell replays the base scenario seed
    // so the table matches a serial single-scenario run exactly.
    spec.scenario_seeds = {spec.base.seed};
    for (const FaultCase& fc : faults) spec.fault_specs.emplace_back(fc.spec);

    MatrixSink sink(sc, faults);
    std::vector<runtime::TrialSink*> sinks{&sink};
    runtime::Campaign(std::move(spec)).run(/*jobs=*/0, sinks);
  }

  // Holdover-budget invariant: an unbounded dropout starting mid-run must
  // exhaust the budget and latch DEGRADED_SAFE_STOP (degradation == 3).
  {
    core::ScenarioOptions o = base_options(scenarios[0]);
    o.pipeline = core::hardened_pipeline_options(/*max_holdover_steps=*/30);
    o.fault_spec = "dropout:start=60,len=0";
    const auto r = core::make_paper_scenario(o).run();
    std::printf("\nbudget probe: safe-stop steps %zu, degradation max %.0f\n",
                r.safe_stop_steps, r.trace.column_max("degradation"));
    check(r.trace.column_max("degradation") == 3.0,
          "unbounded holdover never entered DEGRADED_SAFE_STOP",
          "budget-probe");
    check(r.safe_stop_steps > 0, "safe-stop never commanded", "budget-probe");
    check(r.nonfinite_controller_inputs == 0,
          "non-finite value reached the controller", "budget-probe");
    check(!r.collided, "collision in safe-stop", "budget-probe");
  }

  // Identity invariant: an explicitly-attached empty schedule must match a
  // run with no schedule at all, sample for sample.
  {
    core::ScenarioOptions o = base_options(scenarios[1]);  // dos
    const auto plain = core::make_paper_scenario(o).run();
    core::Scenario with_empty = core::make_paper_scenario(o);
    with_empty.config.faults = std::make_shared<fault::FaultSchedule>();
    const auto wrapped = with_empty.run();
    const bool identical =
        plain.trace.column("follower_v_mps") ==
            wrapped.trace.column("follower_v_mps") &&
        plain.trace.column("safe_gap_m") == wrapped.trace.column("safe_gap_m");
    std::printf("empty-schedule identity: %s\n", identical ? "ok" : "BROKEN");
    check(identical, "empty schedule changed the simulation", "identity");
  }

  if (failures == 0) {
    std::printf("\nall robustness invariants hold (%s matrix)\n",
                smoke ? "smoke" : "full");
  } else {
    std::printf("\n%d invariant violation(s)\n", failures);
  }
  return failures == 0 ? 0 : 1;
}
