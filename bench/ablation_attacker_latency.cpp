// Quantifies the paper's Section 7 limitation: signal-level CRA detection
// probability as a function of the replay attacker's reaction latency.
//
// The defender gates its probe per 16-sample chip from a keyed PRBS; the
// attacker replays with a pipeline latency of L samples. At L = 0 (an
// adversary sampling faster than the defender) the counterfeit perfectly
// mimics the modulation and CRA is blind — exactly the failure mode the
// paper's future work targets.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <random>

#include "cra/waveform_auth.hpp"

namespace {

using namespace safe;

dsp::ComplexSignal make_echo(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> phase(0.0, 2.0 * std::numbers::pi);
  const double p0 = phase(rng);
  dsp::ComplexSignal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::polar(1.0, 2.0 * std::numbers::pi * 0.047 *
                               static_cast<double>(i) +
                           p0);
  }
  return x;
}

}  // namespace

int main() {
  const std::size_t n = 1024;
  const double noise_floor = 1e-3;  // echo SNR = 30 dB
  const int trials = 60;
  std::mt19937 rng(42);
  std::normal_distribution<double> awgn(0.0, std::sqrt(noise_floor / 2.0));

  cra::WaveformAuthOptions options;
  options.chip_length = 16;

  std::printf(
      "Signal-level CRA vs replay-attacker latency (chip = %zu samples, "
      "%d trials per point)\n\n",
      options.chip_length, trials);
  std::printf("%14s %18s %20s\n", "latency[smp]", "P(detect attack)",
              "violated chips [%]");

  for (const std::size_t latency : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
    int detected = 0;
    double violation_rate = 0.0;
    for (int t = 0; t < trials; ++t) {
      cra::WaveformModulator mod(
          static_cast<std::uint16_t>(100 + t), options);
      const auto mask = mod.next_mask(n);
      auto rx = cra::replay_with_latency(make_echo(n, rng), mask, latency);
      for (auto& xi : rx) xi += dsp::Complex{awgn(rng), awgn(rng)};
      const auto result = cra::verify_epoch(rx, mask, noise_floor, options);
      detected += result.attack_detected ? 1 : 0;
      if (result.suppressed_chips > 0) {
        violation_rate += static_cast<double>(result.violated_chips) /
                          static_cast<double>(result.suppressed_chips);
      }
    }
    std::printf("%14zu %17.0f%% %19.1f%%\n", latency,
                100.0 * detected / trials, 100.0 * violation_rate / trials);
  }

  std::printf(
      "\nshape: one sample of attacker latency is already enough for "
      "near-certain detection; only the latency-zero adversary (faster "
      "sampling than the defender, paper Section 7) evades. Against that "
      "adversary the paper's detection method fails by design.\n");
  return 0;
}
