// Ablation: challenge rate vs detection latency and sensing overhead.
//
// The paper's fixed schedule (k = 15, 50, 175, ...) leaves long blind
// windows: an attack starting mid-run goes undetected until the next
// challenge, during which corrupted data drives the controller. This bench
// sweeps PRBS challenge probabilities and reports mean detection latency,
// collision outcomes, and the fraction of epochs sacrificed to challenges.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/scenario.hpp"

namespace {

using namespace safe;

struct RateResult {
  double mean_latency = 0.0;
  int collisions = 0;
  int missed = 0;
  double overhead = 0.0;
};

RateResult run_rate(std::uint32_t numer, std::uint32_t denom,
                    const std::vector<double>& onsets) {
  RateResult out;
  int detected = 0;
  for (std::size_t i = 0; i < onsets.size(); ++i) {
    core::ScenarioOptions o;
    o.attack = core::AttackKind::kDosJammer;
    o.attack_start_s = safe::units::Seconds{onsets[i]};
    o.estimator = radar::BeatEstimator::kPeriodogram;  // fast; same defense
    core::Scenario scenario = core::make_paper_scenario(o);
    const auto key = static_cast<std::uint16_t>(0x1234 + 17 * i);
    auto schedule = std::make_shared<cra::PrbsChallengeSchedule>(
        key, numer, denom, scenario.config.horizon_steps);
    out.overhead = schedule->challenge_rate();
    scenario.schedule = schedule;

    const auto result = scenario.run();
    if (result.collided) ++out.collisions;
    if (result.detection_step) {
      out.mean_latency +=
          static_cast<double>(*result.detection_step) - onsets[i];
      ++detected;
    } else {
      ++out.missed;
    }
  }
  if (detected > 0) out.mean_latency /= detected;
  return out;
}

}  // namespace

int main() {
  const std::vector<double> onsets{60.0, 100.0, 140.0, 182.0, 220.0};

  std::printf(
      "Challenge-rate ablation: PRBS Bernoulli schedules, DoS attack at "
      "varying onsets (%zu onsets each)\n\n",
      onsets.size());
  std::printf("%12s %12s %16s %11s %8s\n", "P(challenge)", "overhead",
              "mean latency [s]", "collisions", "missed");

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> rates{
      {1, 50}, {1, 20}, {1, 10}, {1, 6}, {1, 3}, {1, 2}};
  for (const auto& [numer, denom] : rates) {
    const RateResult r = run_rate(numer, denom, onsets);
    std::printf("%9u/%-2u %12.3f %16.2f %11d %8d\n", numer, denom, r.overhead,
                r.mean_latency, r.collisions, r.missed);
  }
  std::printf(
      "\nshape: latency ~ 1/rate, and sparse schedules leave blind windows "
      "long enough for the jammer to cause collisions before detection. Very "
      "dense schedules (~1/2) start hurting again: half the epochs carry no "
      "fresh radar data, so the controller coasts on estimates. The sweet "
      "spot here is around 1/3.\n");
  return 0;
}
