// Ablation: challenge rate vs detection latency and sensing overhead.
//
// The paper's fixed schedule (k = 15, 50, 175, ...) leaves long blind
// windows: an attack starting mid-run goes undetected until the next
// challenge, during which corrupted data drives the controller. This bench
// sweeps PRBS challenge probabilities and reports mean detection latency,
// collision outcomes, and the fraction of epochs sacrificed to challenges.
//
// Each rate is a runtime::Campaign over the attack-onset grid axis; the
// per-trial PRBS schedule is installed by the customize hook (keyed off the
// trial id alone, so the sweep stays deterministic at any worker count).
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"

namespace {

using namespace safe;

runtime::CampaignSummary run_rate(std::uint32_t numer, std::uint32_t denom,
                                  const std::vector<double>& onsets) {
  runtime::CampaignSpec spec;
  spec.base.attack = core::AttackKind::kDosJammer;
  spec.base.estimator = radar::BeatEstimator::kPeriodogram;  // fast; same CRA
  for (const double onset : onsets) {
    spec.attack_onsets_s.push_back(units::Seconds{onset});
  }
  spec.trials = onsets.size();
  spec.scenario_seeds = {spec.base.seed};  // vary only the onset per trial
  spec.customize = [numer, denom](core::Scenario& s,
                                  const runtime::TrialRecord& r) {
    const auto key = static_cast<std::uint16_t>(0x1234 + 17 * r.trial_id);
    s.schedule = std::make_shared<cra::PrbsChallengeSchedule>(
        key, numer, denom, s.config.horizon_steps);
  };
  const runtime::Campaign campaign(std::move(spec));
  return campaign.run(/*jobs=*/0).summary;
}

}  // namespace

int main() {
  const std::vector<double> onsets{60.0, 100.0, 140.0, 182.0, 220.0};

  std::printf(
      "Challenge-rate ablation: PRBS Bernoulli schedules, DoS attack at "
      "varying onsets (%zu onsets each)\n\n",
      onsets.size());
  std::printf("%12s %12s %16s %11s %8s\n", "P(challenge)", "overhead",
              "mean latency [s]", "collisions", "missed");

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> rates{
      {1, 50}, {1, 20}, {1, 10}, {1, 6}, {1, 3}, {1, 2}};
  for (const auto& [numer, denom] : rates) {
    const runtime::CampaignSummary s = run_rate(numer, denom, onsets);
    // Realized challenge fraction of the same PRBS draw the last trial ran.
    const cra::PrbsChallengeSchedule probe(
        static_cast<std::uint16_t>(0x1234 + 17 * (onsets.size() - 1)), numer,
        denom, core::ScenarioOptions{}.horizon_steps);
    std::printf("%9u/%-2u %12.3f %16.2f %11zu %8zu\n", numer, denom,
                probe.challenge_rate(), s.latency_mean_s.value(),
                s.collisions, s.missed);
  }
  std::printf(
      "\nshape: latency ~ 1/rate, and sparse schedules leave blind windows "
      "long enough for the jammer to cause collisions before detection. Very "
      "dense schedules (~1/2) start hurting again: half the epochs carry no "
      "fresh radar data, so the controller coasts on estimates. The sweet "
      "spot here is around 1/3.\n");
  return 0;
}
