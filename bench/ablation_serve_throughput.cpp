// Serving throughput ablation: an in-process StreamServer on a loopback
// socket, hit by the load generator at increasing connection counts.
// Reports frames/s and p50/p95/p99 frame latency per point and emits one
// machine-readable JSON object on stdout (recorded as BENCH_serve.json).
//
// `--smoke` shrinks the sweep for CI. Every point runs with --verify
// semantics: received ESTIMATE frames are byte-compared against the
// offline pipeline, so the ablation doubles as a parity check under load.
//
// After the clean sweep one degraded-network point runs through an
// in-process chaos proxy (5 ms latency + 5 ms jitter, 1% per-chunk
// disconnect probability) with resilient clients, recording what the
// resume-and-retry path costs in throughput and tail latency.
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/chaos.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace {

using namespace safe;

struct Point {
  std::size_t connections = 0;
  serve::LoadReport report;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::int64_t steps = smoke ? 120 : 300;

  runtime::ThreadPool pool(
      std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  serve::ServerOptions options;
  options.session.max_sessions = 64;
  serve::StreamServer server(options, pool);
  try {
    server.bind_and_listen();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bind failed: %s\n", e.what());
    return 1;
  }
  std::thread loop([&server] { server.run(); });

  std::vector<Point> points;
  bool ok = true;
  std::printf("Serving throughput: loopback, %lld steps/session, DoS trace\n\n",
              static_cast<long long>(steps));
  std::printf("%12s %12s %12s %10s %10s %10s\n", "connections", "frames",
              "frames/s", "p50[ms]", "p95[ms]", "p99[ms]");
  for (const std::size_t connections : sweep) {
    serve::LoadOptions load;
    load.host = "127.0.0.1";
    load.port = server.port();
    load.connections = connections;
    load.sessions = connections;
    load.spec.attack = core::AttackKind::kDosJammer;
    load.spec.horizon_steps = steps;
    load.master_seed = 42 + connections;
    load.verify = true;
    Point point;
    point.connections = connections;
    try {
      point.report = serve::run_load(load);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "loadgen failed: %s\n", e.what());
      ok = false;
      break;
    }
    if (!point.report.ok()) ok = false;
    for (const std::string& error : point.report.errors) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    std::printf("%12zu %12llu %12.0f %10.2f %10.2f %10.2f\n", connections,
                static_cast<unsigned long long>(
                    point.report.estimates_received),
                point.report.throughput_frames_per_s,
                static_cast<double>(point.report.latency_p50_ns) / 1e6,
                static_cast<double>(point.report.latency_p95_ns) / 1e6,
                static_cast<double>(point.report.latency_p99_ns) / 1e6);
    points.push_back(std::move(point));
  }

  // Degraded-network point: the same workload through a chaos proxy that
  // adds 5 ms latency with 5 ms jitter, re-splits writes, and cuts links at 1%
  // probability per forwarded chunk. Resilient clients resume across the
  // cuts; the parity check still holds byte-for-byte.
  const std::string chaos_spec =
      "latency:ms=5,jitter=5;split:min=16,max=256;disconnect:prob=0.01";
  const std::uint64_t chaos_seed = 9;
  serve::LoadReport degraded;
  {
    serve::ChaosProxy proxy(serve::parse_chaos_spec(chaos_spec), chaos_seed,
                            "127.0.0.1", server.port());
    try {
      proxy.bind_and_listen("127.0.0.1", 0);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos proxy bind failed: %s\n", e.what());
      server.request_drain();
      loop.join();
      pool.drain();
      return 1;
    }
    std::thread chaos_loop([&proxy] { proxy.run(); });

    serve::LoadOptions load;
    load.host = "127.0.0.1";
    load.port = proxy.port();
    load.connections = 4;
    load.sessions = 4;
    load.spec.attack = core::AttackKind::kDosJammer;
    load.spec.horizon_steps = steps;
    load.master_seed = 99;
    load.verify = true;
    load.retry_attempts = 40;
    load.retry.initial_backoff_ns = 5'000'000;
    load.retry.max_backoff_ns = 100'000'000;
    try {
      degraded = serve::run_load(load);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "degraded loadgen failed: %s\n", e.what());
      ok = false;
    }
    if (!degraded.ok()) ok = false;
    for (const std::string& error : degraded.errors) {
      std::fprintf(stderr, "degraded error: %s\n", error.c_str());
    }
    std::printf("\nDegraded network (%s, seed %llu):\n", chaos_spec.c_str(),
                static_cast<unsigned long long>(chaos_seed));
    std::printf("%12zu %12llu %12.0f %10.2f %10.2f %10.2f  "
                "(%llu reconnects, %llu resumes)\n",
                load.connections,
                static_cast<unsigned long long>(degraded.estimates_received),
                degraded.throughput_frames_per_s,
                static_cast<double>(degraded.latency_p50_ns) / 1e6,
                static_cast<double>(degraded.latency_p95_ns) / 1e6,
                static_cast<double>(degraded.latency_p99_ns) / 1e6,
                static_cast<unsigned long long>(degraded.reconnects),
                static_cast<unsigned long long>(degraded.resumes));

    proxy.request_stop();
    chaos_loop.join();
  }

  server.request_drain();
  loop.join();
  pool.drain();

  std::ostringstream json;
  json << "{\"bench\":\"serve_throughput\",\"steps_per_session\":" << steps
       << ",\"verified\":true,\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i > 0) json << ",";
    json << "{\"connections\":" << points[i].connections
         << ",\"report\":" << serve::to_json(points[i].report) << "}";
  }
  json << "],\"degraded\":{\"chaos\":\"" << chaos_spec
       << "\",\"seed\":" << chaos_seed << ",\"connections\":4,\"report\":"
       << serve::to_json(degraded) << "}";
  json << ",\"ok\":" << (ok ? "true" : "false") << "}";
  std::printf("\n%s\n", json.str().c_str());
  return ok ? 0 : 1;
}
