// Reproduces paper Figure 2b: delay-injection attack (+6 m spoofed range
// from k = 180) with the leader decelerating at a constant -0.1082 m/s^2.
//
// Expected shape (paper): the attacked distance trace sits ~6 m above the
// truth after onset, so the undefended follower fails to slow down and the
// real gap shrinks; detection fires at k = 182 and the estimated trace
// restores the true trend.
#include "bench_common.hpp"

int main() {
  const auto runs = safe::bench::run_figure(
      safe::core::LeaderScenario::kConstantDecel,
      safe::core::AttackKind::kDelayInjection, /*attack_start_s=*/180.0);
  safe::bench::print_figure(
      "Figure 2b: delay-injection attack, leader constant deceleration",
      runs);
  return 0;
}
