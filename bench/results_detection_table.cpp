// Reproduces the paper's "Results" paragraph (Section 6.2) as a table:
// detection instant, false positives/negatives, and the RLS runtime for the
// attack-window holdover, for both attacks on both leader scenarios.
//
// Paper reference points: detection at k = 182 for both attacks; zero FP and
// FN; RLS runtimes of 1.2e7 ns (DoS) and 1.3e7 ns (delay) for the k = 182 to
// 300 window. Absolute runtimes differ from the authors' MATLAB testbed; the
// claim that holds is "orders of magnitude below the 1 s sample period".
#include <chrono>
#include <cstdio>
#include <string>

#include "core/scenario.hpp"
#include "estimation/rls_predictor.hpp"
#include "units/units.hpp"

namespace {

using namespace safe;

/// Wall-clock of the paper's estimation workload: train the two RLS
/// predictors on the pre-attack series and free-run them across the attack
/// window (both channels).
double rls_holdover_ns(const core::CarFollowingResult& clean,
                       std::int64_t onset, std::int64_t horizon) {
  const auto& d = clean.trace.column("meas_gap_m");
  const auto& v = clean.trace.column("meas_dv_mps");
  const auto& challenge = clean.trace.column("challenge");

  estimation::RlsArPredictor dist, vel;
  for (std::int64_t k = 0; k < onset; ++k) {
    const auto i = static_cast<std::size_t>(k);
    if (challenge[i] != 0.0) continue;
    dist.observe(d[i]);
    vel.observe(v[i]);
  }
  const auto begin = std::chrono::steady_clock::now();
  for (std::int64_t k = onset; k < horizon; ++k) {
    static_cast<void>(dist.predict_next());
    static_cast<void>(vel.predict_next());
  }
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

void run_case(core::LeaderScenario leader, core::AttackKind attack,
              double onset, const char* scenario_label,
              const char* attack_label) {
  core::ScenarioOptions o;
  o.leader = leader;
  o.attack = attack;
  o.attack_start_s = units::Seconds{onset};
  o.estimator = radar::BeatEstimator::kRootMusic;

  o.defense_enabled = true;
  const auto defended = core::make_paper_scenario(o).run();
  o.defense_enabled = false;
  const auto undefended = core::make_paper_scenario(o).run();

  o.attack = core::AttackKind::kNone;
  const auto clean = core::make_paper_scenario(o).run();
  const double ns = rls_holdover_ns(clean, 182, 300);

  const std::string detected =
      defended.detection_step ? std::to_string(*defended.detection_step)
                              : std::string("never");
  std::printf("%-14s %-16s %9s %4zu %4zu %12.3e %11s %11s\n", scenario_label,
              attack_label, detected.c_str(),
              defended.detection_stats.false_positives,
              defended.detection_stats.false_negatives, ns,
              undefended.collided ? "COLLISION" : "safe",
              defended.collided ? "COLLISION" : "safe");
}

}  // namespace

int main() {
  std::printf(
      "Results table (paper Section 6.2): detection instant, FP/FN, RLS "
      "holdover runtime\n");
  std::printf("paper: detection at k = 182, zero FP/FN, RLS ~1.2-1.3e7 ns\n\n");
  std::printf("%-14s %-16s %9s %4s %4s %12s %11s %11s\n", "scenario",
              "attack", "detected@", "FP", "FN", "RLS[ns]", "undefended",
              "defended");
  run_case(safe::core::LeaderScenario::kConstantDecel,
           safe::core::AttackKind::kDosJammer, 182.0, "const-decel", "dos");
  run_case(safe::core::LeaderScenario::kConstantDecel,
           safe::core::AttackKind::kDelayInjection, 180.0, "const-decel",
           "delay-injection");
  run_case(safe::core::LeaderScenario::kDecelThenAccel,
           safe::core::AttackKind::kDosJammer, 182.0, "decel-accel", "dos");
  run_case(safe::core::LeaderScenario::kDecelThenAccel,
           safe::core::AttackKind::kDelayInjection, 180.0, "decel-accel",
           "delay-injection");
  return 0;
}
