// Reproduces the paper's "Results" paragraph (Section 6.2) as a table:
// detection instant, false positives/negatives, and the RLS runtime for the
// attack-window holdover, for both attacks on both leader scenarios.
//
// Paper reference points: detection at k = 182 for both attacks; zero FP and
// FN; RLS runtimes of 1.2e7 ns (DoS) and 1.3e7 ns (delay) for the k = 182 to
// 300 window. Absolute runtimes differ from the authors' MATLAB testbed; the
// claim that holds is "orders of magnitude below the 1 s sample period".
//
// The attacked cells run through the runtime campaign engine (a defended /
// undefended defense axis with the scenario seed pinned), so each row is the
// same machinery the Monte Carlo campaigns use; the clean reference run
// stays a direct scenario execution because the RLS timing below is a
// hand-rolled wall-clock measurement over its trace.
//
// `--json` appends one machine-readable JSON line after the table (the
// RLS[ns] column is wall-clock and therefore not byte-stable; every other
// field is deterministic).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "estimation/rls_predictor.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "units/units.hpp"

namespace {

using namespace safe;

/// Wall-clock of the paper's estimation workload: train the two RLS
/// predictors on the pre-attack series and free-run them across the attack
/// window (both channels).
double rls_holdover_ns(const core::CarFollowingResult& clean,
                       std::int64_t onset, std::int64_t horizon) {
  const auto& d = clean.trace.column("meas_gap_m");
  const auto& v = clean.trace.column("meas_dv_mps");
  const auto& challenge = clean.trace.column("challenge");

  estimation::RlsArPredictor dist, vel;
  for (std::int64_t k = 0; k < onset; ++k) {
    const auto i = static_cast<std::size_t>(k);
    if (challenge[i] != 0.0) continue;
    dist.observe(d[i]);
    vel.observe(v[i]);
  }
  const auto begin = std::chrono::steady_clock::now();
  for (std::int64_t k = onset; k < horizon; ++k) {
    static_cast<void>(dist.predict_next());
    static_cast<void>(vel.predict_next());
  }
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

/// Collects the two trial records (trial 0 = defended, 1 = undefended).
class RecordSink final : public runtime::TrialSink {
 public:
  void consume(const runtime::TrialRecord& record) override {
    records.push_back(record);
  }
  std::vector<runtime::TrialRecord> records;
};

struct CaseRow {
  const char* scenario_label;
  const char* attack_label;
  std::int64_t detected_step = -1;  ///< -1 = never detected
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double rls_ns = 0.0;
  bool undefended_collided = false;
  bool defended_collided = false;
};

CaseRow run_case(core::LeaderScenario leader, core::AttackKind attack,
                 double onset, const char* scenario_label,
                 const char* attack_label) {
  // One two-trial campaign per case: the defense axis is the only grid axis,
  // so trial 0 lands on defended and trial 1 on undefended, both replaying
  // the exact scenario seed the direct runs used.
  runtime::CampaignSpec spec;
  spec.base.leader = leader;
  spec.base.attack = attack;
  spec.base.attack_start_s = units::Seconds{onset};
  spec.base.estimator = radar::BeatEstimator::kRootMusic;
  spec.defenses = {true, false};
  spec.trials = 2;
  spec.scenario_seeds = {1};

  RecordSink sink;
  std::vector<runtime::TrialSink*> sinks{&sink};
  runtime::Campaign(std::move(spec)).run(1, sinks);
  const runtime::TrialRecord& defended = sink.records.at(0);
  const runtime::TrialRecord& undefended = sink.records.at(1);

  core::ScenarioOptions o;
  o.leader = leader;
  o.attack = core::AttackKind::kNone;
  o.attack_start_s = units::Seconds{onset};
  o.estimator = radar::BeatEstimator::kRootMusic;
  const auto clean = core::make_paper_scenario(o).run();

  CaseRow row;
  row.scenario_label = scenario_label;
  row.attack_label = attack_label;
  row.detected_step = defended.detection_step;
  row.false_positives = defended.false_positives;
  row.false_negatives = defended.false_negatives;
  row.rls_ns = rls_holdover_ns(clean, 182, 300);
  row.undefended_collided = undefended.collided;
  row.defended_collided = defended.collided;
  return row;
}

void print_row(const CaseRow& row) {
  const std::string detected = row.detected_step >= 0
                                   ? std::to_string(row.detected_step)
                                   : std::string("never");
  std::printf("%-14s %-16s %9s %4zu %4zu %12.3e %11s %11s\n",
              row.scenario_label, row.attack_label, detected.c_str(),
              row.false_positives, row.false_negatives, row.rls_ns,
              row.undefended_collided ? "COLLISION" : "safe",
              row.defended_collided ? "COLLISION" : "safe");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  std::printf(
      "Results table (paper Section 6.2): detection instant, FP/FN, RLS "
      "holdover runtime\n");
  std::printf("paper: detection at k = 182, zero FP/FN, RLS ~1.2-1.3e7 ns\n\n");
  std::printf("%-14s %-16s %9s %4s %4s %12s %11s %11s\n", "scenario",
              "attack", "detected@", "FP", "FN", "RLS[ns]", "undefended",
              "defended");

  std::vector<CaseRow> rows;
  rows.push_back(run_case(safe::core::LeaderScenario::kConstantDecel,
                          safe::core::AttackKind::kDosJammer, 182.0,
                          "const-decel", "dos"));
  print_row(rows.back());
  rows.push_back(run_case(safe::core::LeaderScenario::kConstantDecel,
                          safe::core::AttackKind::kDelayInjection, 180.0,
                          "const-decel", "delay-injection"));
  print_row(rows.back());
  rows.push_back(run_case(safe::core::LeaderScenario::kDecelThenAccel,
                          safe::core::AttackKind::kDosJammer, 182.0,
                          "decel-accel", "dos"));
  print_row(rows.back());
  rows.push_back(run_case(safe::core::LeaderScenario::kDecelThenAccel,
                          safe::core::AttackKind::kDelayInjection, 180.0,
                          "decel-accel", "delay-injection"));
  print_row(rows.back());

  if (json) {
    std::ostringstream out;
    out << "{\"bench\":\"results_detection_table\",\"cases\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CaseRow& row = rows[i];
      if (i > 0) out << ",";
      out << "{\"scenario\":\"" << row.scenario_label << "\""
          << ",\"attack\":\"" << row.attack_label << "\""
          << ",\"detected_step\":" << row.detected_step
          << ",\"fp\":" << row.false_positives
          << ",\"fn\":" << row.false_negatives
          << ",\"rls_holdover_ns\":" << row.rls_ns
          << ",\"undefended_collision\":"
          << (row.undefended_collided ? "true" : "false")
          << ",\"defended_collision\":"
          << (row.defended_collided ? "true" : "false") << "}";
    }
    out << "]}";
    std::printf("\n%s\n", out.str().c_str());
  }
  return 0;
}
