// Ablation: the paper's hierarchical ACC vs the plain IDM as the follower
// controller, with and without attack, plus a stop-and-go leader to stress
// the estimators with a continuously changing trend.
#include <cstdio>
#include <memory>
#include <string>

#include "core/scenario.hpp"
#include "vehicle/leader_profile.hpp"

namespace {

using namespace safe;

void run_case(core::FollowerController controller, core::AttackKind attack,
              std::shared_ptr<const vehicle::LeaderProfile> leader,
              const char* controller_label, const char* case_label) {
  core::ScenarioOptions o;
  o.attack = attack;
  o.estimator = radar::BeatEstimator::kPeriodogram;
  core::Scenario s = core::make_paper_scenario(o);
  s.config.controller = controller;
  if (leader) s.leader = std::move(leader);

  const auto r = s.run();
  const std::string detected =
      r.detection_step ? std::to_string(*r.detection_step)
                       : std::string("-");
  std::printf("%-14s %-22s %10.2f %10s %9s %4zu %4zu\n", controller_label,
              case_label, r.min_gap_m.value(),
              r.collided ? "COLLISION" : "safe",
              detected.c_str(), r.detection_stats.false_positives,
              r.detection_stats.false_negatives);
}

}  // namespace

int main() {
  std::printf(
      "Follower-controller ablation (defense on, periodogram estimator)\n\n");
  std::printf("%-14s %-22s %10s %10s %9s %4s %4s\n", "controller", "case",
              "min gap[m]", "outcome", "detected@", "FP", "FN");

  const auto stop_and_go = std::make_shared<vehicle::StopAndGoProfile>();

  for (const auto& [ctrl, label] :
       {std::pair{core::FollowerController::kAccHierarchy, "acc-hierarchy"},
        std::pair{core::FollowerController::kIdm, "idm"}}) {
    run_case(ctrl, core::AttackKind::kNone, nullptr, label, "clean");
    run_case(ctrl, core::AttackKind::kDosJammer, nullptr, label,
             "dos@182");
    run_case(ctrl, core::AttackKind::kDelayInjection, nullptr, label,
             "delay@182");
    run_case(ctrl, core::AttackKind::kDosJammer, stop_and_go, label,
             "dos@182 stop-and-go");
  }
  std::printf(
      "\nshape: detection (k = 182, zero FP/FN) is controller-agnostic. "
      "Recovery is NOT: the paper's ACC with its 3 s constant-time-headway "
      "margin absorbs the RLS holdover drift across the ~2-minute attack, "
      "while the tighter 1.5 s-headway IDM runs out of margin and collides "
      "near standstill. Holdover-based recovery is only as safe as the "
      "controller's spacing margin over the blind window.\n");
  return 0;
}
