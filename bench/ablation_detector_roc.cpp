// Detection-backend ablation: ROC points, detection latency, and holdover
// quality for every detect:: backend over the attack families, driven by the
// runtime campaign engine (counter-based seeding + ordered sinks, so the
// table and the JSON line are bit-identical at any --jobs).
//
// Families: a clean baseline (false-positive floor), the paper's DoS jammer
// and delay-injection attacks (true-positive rate + latency), and a stealthy
// bias-ramp sensor fault with no attack behind it (alarms there are scored
// as false positives — the nuisance-rejection axis).
//
// Output: one aligned row per (family, detector) cell, then a single JSON
// object on the last line (the CI smoke redirects stdout to
// BENCH_detect.json). Wall-clock goes to stderr only, keeping stdout
// deterministic.
//
// Flags: --smoke (1 trial per cell), --jobs N (default 1).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "units/units.hpp"

namespace {

using namespace safe;

const char* const kDetectors[] = {
    "cra",
    "chi2",
    "ar",
    "fusion:members=cra+chi2,quorum=1",
};

struct Family {
  const char* name;
  core::AttackKind attack;
  double onset_s;
  const char* fault_spec;
};

const Family kFamilies[] = {
    {"clean", core::AttackKind::kNone, 182.0, ""},
    {"dos", core::AttackKind::kDosJammer, 182.0, ""},
    {"delay", core::AttackKind::kDelayInjection, 180.0, ""},
    {"bias-stealth", core::AttackKind::kNone, 182.0,
     "bias:start=182,slope=0.5"},
};

struct CellStats {
  std::size_t trials = 0;
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;
  std::size_t detected = 0;
  std::size_t collisions = 0;
  std::vector<double> latencies_s;
  double rmse_sum_m = 0.0;
  std::size_t rmse_trials = 0;

  [[nodiscard]] double tpr() const {
    const std::size_t d = tp + fn;
    return d > 0 ? static_cast<double>(tp) / static_cast<double>(d) : 0.0;
  }
  [[nodiscard]] double fpr() const {
    const std::size_t d = fp + tn;
    return d > 0 ? static_cast<double>(fp) / static_cast<double>(d) : 0.0;
  }
  [[nodiscard]] double latency_median_s() const {
    if (latencies_s.empty()) return -1.0;
    std::vector<double> sorted = latencies_s;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
  [[nodiscard]] double holdover_rmse_mean_m() const {
    return rmse_trials > 0 ? rmse_sum_m / static_cast<double>(rmse_trials)
                           : 0.0;
  }
};

/// Buckets records by the detector axis (the only grid axis per campaign).
class CellSink final : public runtime::TrialSink {
 public:
  explicit CellSink(std::size_t detectors) : cells_(detectors) {}

  void consume(const runtime::TrialRecord& r) override {
    CellStats& cell =
        cells_[static_cast<std::size_t>(r.trial_id) % cells_.size()];
    ++cell.trials;
    cell.tp += r.true_positives;
    cell.fp += r.false_positives;
    cell.tn += r.true_negatives;
    cell.fn += r.false_negatives;
    if (r.collided) ++cell.collisions;
    if (r.detection_step >= 0) ++cell.detected;
    if (r.detection_latency_s.value() >= 0.0) {
      cell.latencies_s.push_back(r.detection_latency_s.value());
    }
    if (r.holdover_steps > 0) {
      cell.rmse_sum_m += r.holdover_rmse_m.value();
      ++cell.rmse_trials;
    }
  }

  [[nodiscard]] const std::vector<CellStats>& cells() const { return cells_; }

 private:
  std::vector<CellStats> cells_;
};

struct Row {
  const Family* family;
  const char* detector;
  CellStats stats;
};

void append_json_double(std::ostringstream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::stoull(argv[++i]));
    }
  }
  const std::size_t n_detectors = std::size(kDetectors);
  const std::size_t trials_per_cell = smoke ? 1 : 5;

  std::printf(
      "Detection-backend ROC / latency ablation (campaign engine, %zu "
      "trial(s) per cell)\n\n",
      trials_per_cell);
  std::printf("%-13s %-33s %5s %5s %5s %5s %7s %7s %11s %13s %5s\n",
              "family", "detector", "TP", "FP", "TN", "FN", "TPR", "FPR",
              "latency[s]", "holdover[m]", "crash");

  std::vector<Row> rows;
  for (const Family& family : kFamilies) {
    runtime::CampaignSpec spec;
    spec.base.attack = family.attack;
    spec.base.attack_start_s = units::Seconds{family.onset_s};
    spec.base.fault_spec = family.fault_spec;
    spec.base.estimator = radar::BeatEstimator::kPeriodogram;
    spec.detector_specs.assign(std::begin(kDetectors), std::end(kDetectors));
    spec.trials = n_detectors * trials_per_cell;
    spec.seed = 1;

    CellSink sink(n_detectors);
    std::vector<runtime::TrialSink*> sinks{&sink};
    const runtime::CampaignResult result =
        runtime::Campaign(std::move(spec)).run(jobs, sinks);
    std::fprintf(stderr, "family %-13s %zu trial(s) in %.2f s\n", family.name,
                 result.trials, result.wall_s.value());

    for (std::size_t d = 0; d < n_detectors; ++d) {
      Row row{&family, kDetectors[d], sink.cells()[d]};
      const CellStats& s = row.stats;
      const double latency = s.latency_median_s();
      char latency_str[32];
      if (latency >= 0.0) {
        std::snprintf(latency_str, sizeof(latency_str), "%.2f", latency);
      } else {
        std::snprintf(latency_str, sizeof(latency_str), "n/a");
      }
      std::printf("%-13s %-33s %5zu %5zu %5zu %5zu %7.3f %7.3f %11s "
                  "%13.4f %5zu\n",
                  family.name, row.detector, s.tp, s.fp, s.tn, s.fn, s.tpr(),
                  s.fpr(), latency_str, s.holdover_rmse_mean_m(),
                  s.collisions);
      rows.push_back(std::move(row));
    }
  }

  std::ostringstream json;
  json << "{\"bench\":\"detector_roc\",\"trials_per_cell\":"
       << trials_per_cell << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const CellStats& s = row.stats;
    if (i > 0) json << ",";
    json << "{\"family\":\"" << row.family->name << "\",\"detector\":\""
         << row.detector << "\",\"trials\":" << s.trials
         << ",\"tp\":" << s.tp << ",\"fp\":" << s.fp << ",\"tn\":" << s.tn
         << ",\"fn\":" << s.fn << ",\"tpr\":";
    append_json_double(json, s.tpr());
    json << ",\"fpr\":";
    append_json_double(json, s.fpr());
    json << ",\"detected\":" << s.detected << ",\"latency_median_s\":";
    append_json_double(json, s.latency_median_s());
    json << ",\"holdover_rmse_mean_m\":";
    append_json_double(json, s.holdover_rmse_mean_m());
    json << ",\"collisions\":" << s.collisions << "}";
  }
  json << "]}";
  std::printf("\n%s\n", json.str().c_str());
  return 0;
}
