// Spoofing-adversary grid: where does CRA stop detecting?
//
// Sweeps attacker sophistication (the full `--attack` spec ladder, from the
// paper's DoS jammer up to the challenge-replaying entrainment attacker)
// against the challenge schedule (the paper's fixed schedule vs PRBS
// Bernoulli schedules) and the detection backend {cra, chi2, ar, fusion}.
// Each cell reports P(detect), median detection latency, and collisions —
// the map of CRA's breaking point (DESIGN.md §17).
//
// The headline cells: a perfectly challenge-synchronized replay
// (entrain:replay=0, no leakage) is silent at every challenge slot, so
// CRA's consistency check never fires under ANY schedule — P(detect) drops
// to 0 and the range lie rides through to a collision. Giving the same
// attacker a leaky transmitter (leak=15) restores detection through
// Algorithm 2's rx-power test.
//
// Driven by the runtime campaign engine (counter-based seeding + ordered
// sinks, so the table and the JSON line are bit-identical at any --jobs).
// Output: one aligned row per cell, then a single JSON object on the last
// line (the CI smoke redirects it to BENCH_spoof.json). Wall-clock goes to
// stderr only, keeping stdout deterministic.
//
// Flags: --smoke (1 trial per cell), --jobs N (default 1).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "cra/challenge.hpp"
#include "runtime/campaign.hpp"
#include "runtime/sink.hpp"
#include "units/units.hpp"

namespace {

using namespace safe;

const char* const kDetectors[] = {
    "cra",
    "chi2",
    "ar",
    "fusion:members=cra+chi2,quorum=1",
};

/// Attacker sophistication ladder, least to most capable.
struct Attacker {
  const char* name;
  const char* spec;
};

const Attacker kAttackers[] = {
    {"dos", "dos"},
    {"spoof", "spoof:coherence=0.9"},
    {"chirp", "chirp:slope=1.00000000002"},
    {"entrain", "entrain:acquire=3"},
    {"entrain-leaky-replay", "entrain:acquire=3,replay=0,leak=15"},
    {"entrain-replay", "entrain:acquire=3,replay=0"},
};

/// Challenge-schedule axis: numer/denom = 0 keeps the paper's fixed
/// schedule; otherwise a per-trial PRBS Bernoulli schedule is installed.
struct Schedule {
  const char* name;
  std::uint32_t numer;
  std::uint32_t denom;
};

const Schedule kSchedules[] = {
    {"paper", 0, 0},
    {"prbs-1/6", 1, 6},
    {"prbs-1/3", 1, 3},
};

struct CellStats {
  std::size_t trials = 0;
  std::size_t detected = 0;
  std::size_t collisions = 0;
  std::vector<double> latencies_s;

  [[nodiscard]] double p_detect() const {
    return trials > 0 ? static_cast<double>(detected) /
                            static_cast<double>(trials)
                      : 0.0;
  }
  [[nodiscard]] double latency_median_s() const {
    if (latencies_s.empty()) return -1.0;
    std::vector<double> sorted = latencies_s;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
};

/// Buckets records by the detector axis (the only grid axis per campaign).
class CellSink final : public runtime::TrialSink {
 public:
  explicit CellSink(std::size_t detectors) : cells_(detectors) {}

  void consume(const runtime::TrialRecord& r) override {
    CellStats& cell =
        cells_[static_cast<std::size_t>(r.trial_id) % cells_.size()];
    ++cell.trials;
    if (r.collided) ++cell.collisions;
    if (r.detection_step >= 0) ++cell.detected;
    if (r.detection_latency_s.value() >= 0.0) {
      cell.latencies_s.push_back(r.detection_latency_s.value());
    }
  }

  [[nodiscard]] const std::vector<CellStats>& cells() const { return cells_; }

 private:
  std::vector<CellStats> cells_;
};

struct Row {
  const Attacker* attacker;
  const Schedule* schedule;
  const char* detector;
  CellStats stats;
};

void append_json_double(std::ostringstream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::stoull(argv[++i]));
    }
  }
  const std::size_t n_detectors = std::size(kDetectors);
  const std::size_t trials_per_cell = smoke ? 1 : 3;

  std::printf(
      "Spoofing-adversary grid: attacker sophistication x challenge "
      "schedule x detector (%zu trial(s) per cell)\n\n",
      trials_per_cell);
  std::printf("%-21s %-9s %-33s %9s %11s %5s\n", "attacker", "schedule",
              "detector", "P(detect)", "latency[s]", "crash");

  std::vector<Row> rows;
  for (const Attacker& attacker : kAttackers) {
    for (const Schedule& schedule : kSchedules) {
      runtime::CampaignSpec spec;
      spec.base.attack_spec = attacker.spec;
      spec.base.estimator = radar::BeatEstimator::kPeriodogram;
      spec.detector_specs.assign(std::begin(kDetectors),
                                 std::end(kDetectors));
      spec.trials = n_detectors * trials_per_cell;
      spec.seed = 1;
      if (schedule.denom > 0) {
        const std::uint32_t numer = schedule.numer;
        const std::uint32_t denom = schedule.denom;
        spec.customize = [numer, denom](core::Scenario& s,
                                        const runtime::TrialRecord& r) {
          // Keyed off the trial id alone, so the grid stays deterministic
          // at any worker count.
          const auto key =
              static_cast<std::uint16_t>(0x5afe + 17 * r.trial_id);
          s.schedule = std::make_shared<cra::PrbsChallengeSchedule>(
              key, numer, denom, s.config.horizon_steps);
        };
      }

      CellSink sink(n_detectors);
      std::vector<runtime::TrialSink*> sinks{&sink};
      const runtime::CampaignResult result =
          runtime::Campaign(std::move(spec)).run(jobs, sinks);
      std::fprintf(stderr, "attacker %-21s schedule %-9s %zu trial(s) in "
                   "%.2f s\n",
                   attacker.name, schedule.name, result.trials,
                   result.wall_s.value());

      for (std::size_t d = 0; d < n_detectors; ++d) {
        Row row{&attacker, &schedule, kDetectors[d], sink.cells()[d]};
        const CellStats& s = row.stats;
        const double latency = s.latency_median_s();
        char latency_str[32];
        if (latency >= 0.0) {
          std::snprintf(latency_str, sizeof(latency_str), "%.2f", latency);
        } else {
          std::snprintf(latency_str, sizeof(latency_str), "n/a");
        }
        std::printf("%-21s %-9s %-33s %9.3f %11s %5zu\n", attacker.name,
                    schedule.name, row.detector, s.p_detect(), latency_str,
                    s.collisions);
        rows.push_back(std::move(row));
      }
    }
  }

  // CRA's breaking point, spelled out.
  std::size_t cra_blind = 0;
  for (const Row& row : rows) {
    if (std::strcmp(row.detector, "cra") == 0 && row.stats.p_detect() < 1.0) {
      ++cra_blind;
    }
  }
  std::printf(
      "\nshape: every attacker that radiates during challenge slots is "
      "caught at the first challenge inside the window; the entrainment "
      "attacker's acquisition delay only defers detection to the next "
      "challenge. The perfectly challenge-synchronized replay "
      "(entrain:replay=0) blinds CRA's consistency check under every "
      "schedule (%zu cra cell(s) below 1.0) and collides; the same attacker "
      "with transmitter leakage (leak=15) is recovered by the rx-power "
      "test.\n",
      cra_blind);

  std::ostringstream json;
  json << "{\"bench\":\"spoof_grid\",\"trials_per_cell\":" << trials_per_cell
       << ",\"cells\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const CellStats& s = row.stats;
    if (i > 0) json << ",";
    json << "{\"attacker\":\"" << row.attacker->name << "\",\"spec\":\""
         << row.attacker->spec << "\",\"schedule\":\"" << row.schedule->name
         << "\",\"detector\":\"" << row.detector
         << "\",\"trials\":" << s.trials << ",\"detected\":" << s.detected
         << ",\"p_detect\":";
    append_json_double(json, s.p_detect());
    json << ",\"latency_median_s\":";
    append_json_double(json, s.latency_median_s());
    json << ",\"collisions\":" << s.collisions << "}";
  }
  json << "]}";
  std::printf("\n%s\n", json.str().c_str());
  return 0;
}
