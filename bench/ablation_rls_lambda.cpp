// Ablation: RLS forgetting factor lambda vs holdover prediction error.
//
// Protocol: run the clean case study once, train an RLS-AR predictor on the
// measured distance / relative-velocity series up to the paper's attack
// onset (k = 182), free-run it across the attack window (k = 182..300), and
// score RMSE against the true series. Sweep lambda.
#include <cmath>
#include <cstdio>

#include "core/scenario.hpp"
#include "estimation/rls_predictor.hpp"

namespace {

using namespace safe;

struct Rmse {
  double distance = 0.0;
  double velocity = 0.0;
};

Rmse holdover_rmse(const core::CarFollowingResult& clean, double lambda,
                   std::int64_t onset) {
  const auto& d_meas = clean.trace.column("meas_gap_m");
  const auto& v_meas = clean.trace.column("meas_dv_mps");
  const auto& d_true = clean.trace.column("true_gap_m");
  const auto& v_true = clean.trace.column("true_dv_mps");
  const auto& challenge = clean.trace.column("challenge");

  estimation::RlsArOptions opt;
  opt.rls.forgetting_factor = lambda;
  estimation::RlsArPredictor dist(opt), vel(opt);

  for (std::size_t k = 0; k < static_cast<std::size_t>(onset); ++k) {
    if (challenge[k] != 0.0) continue;
    dist.observe(d_meas[k]);
    vel.observe(v_meas[k]);
  }
  double se_d = 0.0, se_v = 0.0;
  std::size_t n = 0;
  for (std::size_t k = static_cast<std::size_t>(onset);
       k < clean.trace.num_rows(); ++k) {
    const double dd = dist.predict_next() - d_true[k];
    const double dv = vel.predict_next() - v_true[k];
    se_d += dd * dd;
    se_v += dv * dv;
    ++n;
  }
  return Rmse{std::sqrt(se_d / static_cast<double>(n)),
              std::sqrt(se_v / static_cast<double>(n))};
}

}  // namespace

int main() {
  core::ScenarioOptions o;
  o.estimator = radar::BeatEstimator::kRootMusic;
  const auto clean = core::make_paper_scenario(o).run();

  std::printf(
      "RLS forgetting-factor ablation: 118-step holdover RMSE after training "
      "on k < 182 (clean scenario i)\n\n");
  std::printf("%8s %16s %16s\n", "lambda", "RMSE d [m]", "RMSE dv [m/s]");
  for (const double lambda : {0.90, 0.95, 0.98, 0.99, 0.995, 1.0}) {
    const Rmse r = holdover_rmse(clean, lambda, 182);
    std::printf("%8.3f %16.3f %16.3f\n", lambda, r.distance, r.velocity);
  }
  std::printf(
      "\nshape: moderate forgetting (0.95-0.99) tracks the manoeuvre best; "
      "lambda = 1 anchors to stale dynamics.\n");
  return 0;
}
